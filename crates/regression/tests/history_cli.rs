//! Acceptance tests of the campaign-history CLI: the `history`
//! subcommand must flag a genuine slowdown with a nonzero exit, compare
//! matching-content-key re-runs cleanly, and the `--profile` output must
//! be byte-identical across worker counts under `--deterministic`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_stbus-regress");

/// A fresh scratch directory under target/tmp.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One tiny configuration file, so CLI campaigns stay fast.
fn write_config_dir(base: &Path) -> PathBuf {
    let dir = base.join("configs");
    std::fs::create_dir_all(&dir).expect("config dir");
    std::fs::write(
        dir.join("tiny.cfg"),
        "name = tiny\ninitiators = 2\ntargets = 2\nbus_bytes = 4\nprotocol = t2\n\
         architecture = shared\narbitration = fixed\n",
    )
    .expect("config file");
    dir
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().expect("spawn CLI");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn record(key: &str, wall_us: u64, settle_us: u64) -> profile::HistoryRecord {
    let mut phases = BTreeMap::new();
    phases.insert("settle".to_owned(), settle_us);
    phases.insert("drive".to_owned(), 10_000);
    profile::HistoryRecord {
        key: key.to_owned(),
        source: "regress".to_owned(),
        engine_version: "0.1.0".to_owned(),
        recorded_unix: 1_754_000_000,
        host: profile::HostInfo { cores: 4, jobs: 2 },
        shape: profile::CampaignShape {
            configs: 1,
            tests: 12,
            seeds: 1,
            intensity: 3,
            cells: 12,
        },
        wall_us,
        phases,
        passed: true,
    }
}

#[test]
fn history_flags_injected_slowdown_and_exits_nonzero() {
    let dir = scratch("history-slowdown");
    let store = profile::HistoryStore::in_dir(&dir);
    store.append(&record("cafe0123", 100_000, 40_000)).unwrap();
    // Same workload, settle 2.5x slower, total 1.8x slower.
    store.append(&record("cafe0123", 180_000, 100_000)).unwrap();

    let (code, stdout, stderr) = run(&["history", "--dir", dir.to_str().unwrap()]);
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("settle"), "{stdout}");
    assert!(stderr.contains("regressed beyond 20%"), "{stderr}");

    // The same pair under a permissive threshold is clean.
    let (code, stdout, _) = run(&[
        "history",
        "--dir",
        dir.to_str().unwrap(),
        "--max-regression",
        "200",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("no phase regressed"), "{stdout}");
}

#[test]
fn history_compares_only_matching_content_keys() {
    let dir = scratch("history-keys");
    let store = profile::HistoryStore::in_dir(&dir);
    // A slow foreign-key record right before the latest must NOT become
    // the baseline; the matching-key record further back must.
    store.append(&record("aaaa1111", 100_000, 40_000)).unwrap();
    store.append(&record("bbbb2222", 1_000, 100)).unwrap();
    store.append(&record("aaaa1111", 105_000, 41_000)).unwrap();

    let (code, stdout, _) = run(&["history", "--dir", dir.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("baseline (#0)"), "{stdout}");

    // A lone key has nothing to compare against — still a clean exit.
    store.append(&record("cccc3333", 50_000, 20_000)).unwrap();
    let (code, stdout, _) = run(&["history", "--dir", dir.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("nothing to compare"), "{stdout}");
}

#[test]
fn matching_key_rerun_records_and_compares_clean() {
    let dir = scratch("history-rerun");
    let cfg_dir = write_config_dir(&dir);
    let campaign = [
        "--configs",
        cfg_dir.to_str().unwrap(),
        "--seeds",
        "1",
        "--intensity",
        "3",
        "--jobs",
        "1",
        "--quiet",
        "--no-compare",
        "--history-dir",
        dir.to_str().unwrap(),
    ];
    let (code, _, stderr) = run(&campaign);
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = run(&campaign);
    assert_eq!(code, 0, "{stderr}");

    // Two records, same content key (same engine, matrix, tests, seeds).
    let records = profile::HistoryStore::in_dir(&dir).load();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].key, records[1].key);
    assert_eq!(records[0].source, "regress");
    assert!(records[0].wall_us > 0);
    assert!(records[0].phases.contains_key("settle"));
    assert!(records[0].host.cores >= 1);

    // The comparison finds the baseline and exits cleanly (threshold
    // high enough that scheduler jitter between the two back-to-back
    // runs cannot flake the test).
    let (code, stdout, stderr) = run(&[
        "history",
        "--dir",
        dir.to_str().unwrap(),
        "--max-regression",
        "100000",
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("baseline (#0)"), "{stdout}");
    assert!(stdout.contains(&records[0].key), "{stdout}");
}

#[test]
fn deterministic_profile_output_is_byte_identical_across_jobs() {
    let dir = scratch("profile-jobs");
    let cfg_dir = write_config_dir(&dir);
    let run_with_jobs = |jobs: &str| {
        let (code, stdout, stderr) = run(&[
            "--configs",
            cfg_dir.to_str().unwrap(),
            "--seeds",
            "1",
            "--intensity",
            "3",
            "--quiet",
            "--deterministic",
            "--profile",
            "--no-history",
            "--no-compare",
            "--jobs",
            jobs,
        ]);
        assert_eq!(code, 0, "{stderr}");
        stdout
    };
    let serial = run_with_jobs("1");
    let parallel = run_with_jobs("4");
    // Table AND profile tree: the whole stdout, byte for byte.
    assert_eq!(serial, parallel);
    assert!(serial.contains("regress.campaign"), "{serial}");
    assert!(serial.contains("tb.run"), "{serial}");
    assert!(serial.contains("phase:settle"), "{serial}");
}
