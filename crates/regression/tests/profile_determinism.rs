//! Acceptance tests of the profiling subsystem over a real campaign:
//! the aggregated span tree must not depend on the worker count once
//! timings are stripped, and the Chrome trace export must honor the
//! B/E pairing contract.

use stbus_protocol::NodeConfig;
use stbus_regression::{run_regression, standard_configs, RegressionOptions};
use telemetry::{MemorySink, Telemetry};

/// Runs a small-but-interleaving campaign (8 cells) and returns the
/// captured telemetry events.
fn campaign_events(jobs: usize) -> Vec<telemetry::Event> {
    let configs: Vec<NodeConfig> = vec![NodeConfig::reference(), standard_configs()[5].clone()];
    let tests = vec![
        catg::tests_lib::basic_read_write(6),
        catg::tests_lib::random_mixed(6),
    ];
    let (sink, handle) = MemorySink::new();
    let tel = Telemetry::builder().with_sink(Box::new(sink)).build();
    let options = RegressionOptions {
        seeds: vec![1, 2],
        jobs,
        telemetry: tel.clone(),
        ..RegressionOptions::default()
    };
    run_regression(&configs, &tests, &options);
    tel.flush();
    handle.events()
}

#[test]
fn stripped_profile_is_byte_identical_across_worker_counts() {
    let opts = profile::ProfileOptions {
        group_by: vec!["config".to_owned()],
    };
    let mut serial = profile::build_profile(&profile::collect_spans(&campaign_events(1)), &opts);
    let mut parallel = profile::build_profile(&profile::collect_spans(&campaign_events(4)), &opts);

    // Live profiles differ (wall clock is never reproducible)...
    assert_ne!(serial.render_text(), parallel.render_text());

    // ...but the stripped trees are the same bytes: same spans, same
    // counts, same nesting, regardless of how cells were scheduled.
    serial.strip_timings();
    parallel.strip_timings();
    let a = serial.render_text();
    let b = parallel.render_text();
    assert_eq!(a, b);

    // And the tree is the real campaign shape, not a degenerate flat
    // list: cells grouped per configuration, with the testbench and its
    // phase attribution nested underneath, plus the assembly span.
    assert!(a.contains("regress.campaign"));
    assert!(a.contains("regress.cell{config=reference}"));
    assert!(a.contains("tb.run"));
    assert!(a.contains("phase:settle"));
    assert!(a.contains("phase:drive"));
    assert!(a.contains("phase:vcd"));
    assert!(a.contains("stba.compare"));
    assert!(a.contains("regress.assemble"));
}

#[test]
fn campaign_trace_export_pairs_and_orders_correctly() {
    let events = campaign_events(4);
    let spans = profile::collect_spans(&events);
    assert!(!spans.is_empty());

    let doc = profile::trace_json(&spans);
    // The exported document must survive its own wire format and honor
    // the trace_event structural contract: every B closed by a matching
    // E on the same thread, timestamps non-decreasing per thread.
    let parsed = telemetry::Json::parse(&doc.render()).expect("trace renders valid JSON");
    let stats = profile::validate_trace(&parsed).expect("B/E pairing and timestamp order hold");

    // 2 events per span at minimum (plus synthetic phase blocks).
    assert!(stats.duration_events >= 2 * spans.len() as u64);
    // jobs=4 means worker threads beyond the campaign's main track.
    assert!(stats.threads >= 2, "threads: {}", stats.threads);
    // campaign -> cell -> tb.run -> phase:* nesting reaches depth 3+
    // somewhere (phase blocks sit under leaf tb.run spans).
    assert!(stats.max_depth >= 3, "max depth: {}", stats.max_depth);
}

#[test]
fn phase_totals_cover_the_history_buckets() {
    let events = campaign_events(2);
    let spans = profile::collect_spans(&events);
    let profile = profile::build_profile(&spans, &profile::ProfileOptions::default());
    let phases = profile.phase_totals();
    for bucket in ["settle", "drive", "check", "vcd", "compare", "merge"] {
        assert!(
            phases.contains_key(bucket),
            "missing phase bucket `{bucket}` in {:?}",
            phases.keys().collect::<Vec<_>>()
        );
    }
    // The dominant simulation phases actually accumulated time.
    assert!(phases["settle"] > 0);
    assert!(phases["compare"] > 0);
}
