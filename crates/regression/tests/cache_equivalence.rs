//! Cache equivalence: memoizing cells must never change the evidence.
//! A warm campaign answers every cell from the store without simulating,
//! yet renders the same table and (under `--deterministic` stripping)
//! a byte-identical manifest; flipping any key component forces a miss;
//! corrupt entries are never trusted; and the cache preserves the
//! worker-count determinism guarantee.
//!
//! Every run builds its own `RegressionOptions`: a `Telemetry` handle's
//! metrics registry accumulates across campaigns, and per-process CLI
//! invocations never share one — sharing it here would double-count the
//! warm run's replayed metrics.

use sim_kernel::SimBackend;
use stbus_bca::Fidelity;
use stbus_protocol::{NodeConfig, ViewKind};
use stbus_regression::{run_regression, standard_configs, RegressionOptions, RegressionReport};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("stbus-cache-eq-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn matrix() -> (Vec<NodeConfig>, Vec<catg::TestSpec>) {
    let configs = vec![NodeConfig::reference(), standard_configs()[5].clone()];
    let tests = vec![
        catg::tests_lib::basic_read_write(6),
        catg::tests_lib::out_of_order(6),
    ];
    (configs, tests)
}

fn stripped_manifest(report: &mut RegressionReport) -> String {
    report.strip_timings();
    report.manifest_json().render_pretty()
}

#[test]
fn warm_run_simulates_nothing_and_reports_byte_identically() {
    let dir = temp_store("warm");
    let (configs, tests) = matrix();
    let options = || RegressionOptions {
        seeds: vec![1, 2],
        cache_dir: Some(dir.clone()),
        ..RegressionOptions::default()
    };
    let cells = (configs.len() * tests.len() * 2) as u64;

    let mut cold = run_regression(&configs, &tests, &options());
    let cold_cache = cold.cache.expect("cache summary present");
    assert_eq!(cold_cache.hits, 0);
    assert_eq!(cold_cache.misses, cells);
    assert_eq!(cold_cache.puts, cells);
    assert_eq!(cold_cache.simulated, cells);

    let mut warm = run_regression(&configs, &tests, &options());
    let warm_cache = warm.cache.expect("cache summary present");
    assert_eq!(
        warm_cache.hits, cells,
        "every cell must be answered from the store"
    );
    assert_eq!(
        warm_cache.simulated, 0,
        "a warm campaign performs zero simulations"
    );
    assert_eq!(warm_cache.misses, 0);
    assert_eq!(warm_cache.puts, 0);

    // The table carries no wall-clock data: identical as-is.
    assert_eq!(cold.table(), warm.table());
    // The deterministic manifest — coverage, alignment, pass/fail and
    // the full metrics snapshot — must be byte-identical.
    assert_eq!(stripped_manifest(&mut cold), stripped_manifest(&mut warm));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_key_component_forces_a_miss() {
    let dir = temp_store("keys");
    let configs = vec![NodeConfig::reference()];
    let tests = vec![catg::tests_lib::basic_read_write(4)];
    let base = || RegressionOptions {
        seeds: vec![1],
        cache_dir: Some(dir.clone()),
        ..RegressionOptions::default()
    };

    let cold = run_regression(&configs, &tests, &base());
    assert_eq!(cold.cache.unwrap().puts, 1);

    // Unchanged inputs: a hit.
    let same = run_regression(&configs, &tests, &base());
    assert_eq!(same.cache.unwrap().hits, 1);

    // A different seed.
    let mut options = base();
    options.seeds = vec![2];
    let report = run_regression(&configs, &tests, &options);
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, 1),
        "seed must be in the key"
    );

    // A different configuration.
    let other_config = vec![standard_configs()[0].clone()];
    let report = run_regression(&other_config, &tests, &base());
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, 1),
        "config must be in the key"
    );

    // A different test (same name-generating function, other intensity).
    let other_tests = vec![catg::tests_lib::basic_read_write(5)];
    let report = run_regression(&configs, &other_tests, &base());
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, 1),
        "test spec must be in the key"
    );

    // A different engine.
    let mut options = base();
    options.engine = SimBackend::Compiled;
    let report = run_regression(&configs, &tests, &options);
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, 1),
        "engine must be in the key"
    );

    // A different BCA fidelity.
    let mut options = base();
    options.fidelity = Fidelity::Exact;
    let report = run_regression(&configs, &tests, &options);
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, 1),
        "fidelity must be in the key"
    );

    // Comparison off produces a different cell (no alignment data).
    let mut options = base();
    options.compare_waveforms = false;
    let report = run_regression(&configs, &tests, &options);
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, 1),
        "compare flag must be in the key"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn three_view_campaign_is_cached_and_worker_invariant() {
    let dir = temp_store("threeview");
    let (configs, tests) = matrix();
    let options = |jobs: usize, views: Vec<ViewKind>| RegressionOptions {
        seeds: vec![1, 2],
        jobs,
        views,
        cache_dir: Some(dir.clone()),
        ..RegressionOptions::default()
    };
    let three = || vec![ViewKind::Rtl, ViewKind::Bca, ViewKind::Tlm];
    let cells = (configs.len() * tests.len() * 2) as u64;

    let mut cold = run_regression(&configs, &tests, &options(1, three()));
    let cold_cache = cold.cache.expect("cache summary present");
    assert_eq!((cold_cache.hits, cold_cache.misses), (0, cells));
    let cold_manifest = stripped_manifest(&mut cold);

    // Warm, on more workers: zero simulations, byte-identical evidence
    // including the TLM columns.
    let mut warm = run_regression(&configs, &tests, &options(4, three()));
    let cache = warm.cache.expect("cache summary present");
    assert_eq!(
        (cache.hits, cache.simulated),
        (cells, 0),
        "a warm three-view campaign performs zero simulations"
    );
    assert_eq!(cold.table(), warm.table());
    assert_eq!(
        stripped_manifest(&mut warm),
        cold_manifest,
        "three-view evidence must be worker-count invariant under the cache"
    );

    // Dropping the TLM view changes the cell key: the two-view campaign
    // must not be answered from three-view cells (or vice versa).
    let report = run_regression(
        &configs,
        &tests,
        &options(1, vec![ViewKind::Rtl, ViewKind::Bca]),
    );
    let cache = report.cache.unwrap();
    assert_eq!(
        (cache.hits, cache.misses),
        (0, cells),
        "the view list must be part of the cell key"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_are_resimulated_not_trusted() {
    let dir = temp_store("corrupt");
    let (configs, tests) = matrix();
    let options = || RegressionOptions {
        seeds: vec![1, 2],
        cache_dir: Some(dir.clone()),
        ..RegressionOptions::default()
    };
    let cells = (configs.len() * tests.len() * 2) as u64;

    let mut cold = run_regression(&configs, &tests, &options());
    let cold_manifest = stripped_manifest(&mut cold);

    // Damage two entries on disk: truncate one mid-payload, scribble
    // over another.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store exists")
        .flatten()
        .filter(|e| e.path().is_dir())
        .flat_map(|shard| std::fs::read_dir(shard.path()).into_iter().flatten())
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), cells as usize);
    let full = std::fs::read(&entries[0]).unwrap();
    std::fs::write(&entries[0], &full[..full.len() / 2]).unwrap();
    std::fs::write(&entries[1], b"stbus-cache/1 not an entry at all\n").unwrap();

    let mut warm = run_regression(&configs, &tests, &options());
    let cache = warm.cache.expect("cache summary present");
    assert_eq!(cache.corrupt, 2, "both damaged entries must be detected");
    assert_eq!(cache.hits, cells - 2);
    assert_eq!(cache.simulated, 2, "damaged cells re-simulate");
    assert_eq!(cache.puts, 2, "re-simulated cells are re-recorded");
    assert_eq!(
        stripped_manifest(&mut warm),
        cold_manifest,
        "a damaged store must not change the evidence"
    );

    // The re-recorded entries now serve hits.
    let healed = run_regression(&configs, &tests, &options());
    let cache = healed.cache.unwrap();
    assert_eq!((cache.hits, cache.simulated), (cells, 0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_campaign_is_worker_count_invariant() {
    let dir_serial = temp_store("jobs1");
    let dir_parallel = temp_store("jobs4");
    let (configs, tests) = matrix();
    let options = |jobs: usize, dir: &PathBuf| RegressionOptions {
        seeds: vec![1, 2],
        jobs,
        cache_dir: Some(dir.clone()),
        ..RegressionOptions::default()
    };
    let cells = (configs.len() * tests.len() * 2) as u64;

    let mut cold_serial = run_regression(&configs, &tests, &options(1, &dir_serial));
    let mut cold_parallel = run_regression(&configs, &tests, &options(4, &dir_parallel));
    let serial_manifest = stripped_manifest(&mut cold_serial);
    assert_eq!(
        serial_manifest,
        stripped_manifest(&mut cold_parallel),
        "cold cached campaigns must stay worker-count invariant"
    );

    // Warm on 4 workers against the store a serial run filled.
    let mut warm = run_regression(&configs, &tests, &options(4, &dir_serial));
    let cache = warm.cache.unwrap();
    assert_eq!((cache.hits, cache.simulated), (cells, 0));
    assert_eq!(
        stripped_manifest(&mut warm),
        serial_manifest,
        "a warm parallel campaign must reproduce the serial evidence"
    );

    let _ = std::fs::remove_dir_all(&dir_serial);
    let _ = std::fs::remove_dir_all(&dir_parallel);
}
