//! Cross-engine equivalence: the compiled simulation backend must be a
//! drop-in replacement for the event kernel. For randomly sampled
//! E1-matrix configurations, both engines must produce byte-identical
//! VCDs, identical coverage reports, identical STBA alignment, and a
//! byte-identical report tree (modulo the manifest's engine tag and
//! kernel-metric namespaces). The compiled engine must also keep the
//! worker-count determinism guarantee (jobs 1 ≡ jobs 4).

use catg::{Testbench, TestbenchOptions};
use sim_kernel::SimBackend;
use stbus_protocol::NodeConfig;
use stbus_regression::{run_regression, standard_configs, RegressionOptions, RegressionReport};
use telemetry::Json;

/// Deterministically samples `n` distinct E1-matrix configurations.
fn sampled_configs(n: usize, mut seed: u64) -> Vec<NodeConfig> {
    let all = standard_configs();
    let mut picked = Vec::new();
    let mut taken = vec![false; all.len()];
    while picked.len() < n {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = ((seed >> 33) as usize) % all.len();
        if !taken[idx] {
            taken[idx] = true;
            picked.push(all[idx].clone());
        }
    }
    picked
}

fn campaign(engine: SimBackend, jobs: usize) -> RegressionReport {
    let configs = sampled_configs(3, 0x5EED_CAFE);
    let tests = vec![
        catg::tests_lib::basic_read_write(8),
        catg::tests_lib::random_mixed(8),
    ];
    let options = RegressionOptions {
        seeds: vec![1, 2],
        jobs,
        engine,
        ..RegressionOptions::default()
    };
    let mut report = run_regression(&configs, &tests, &options);
    report.strip_timings();
    report
}

/// Drops the fields that legitimately differ across engines: the
/// top-level `"engine"` tag and the metrics snapshot, whose kernel
/// counters live under `kernel.*` on the event backend and
/// `kernel.compiled.*` on the compiled one.
fn engine_neutral_manifest(report: &RegressionReport) -> String {
    let manifest = report.manifest_json();
    let Json::Obj(fields) = manifest else {
        panic!("manifest is an object")
    };
    Json::Obj(
        fields
            .into_iter()
            .filter(|(k, _)| k != "engine" && k != "metrics")
            .collect(),
    )
    .render_pretty()
}

#[test]
fn compiled_engine_reports_are_byte_identical_to_event() {
    let event = campaign(SimBackend::Event, 1);
    let compiled = campaign(SimBackend::Compiled, 1);

    // The §5 table — pass/fail, functional coverage, STBA alignment per
    // configuration — must not change with the engine.
    assert_eq!(event.table(), compiled.table());

    // Neither may any per-run figure in the manifest: cycles,
    // transactions, checker counts, per-port alignment, code coverage.
    assert_eq!(
        engine_neutral_manifest(&event),
        engine_neutral_manifest(&compiled)
    );

    // Every run's verification and coverage report files are rendered
    // from the records compared above; spot-check the textual artifacts
    // all the same.
    for (ce, cc) in event.configs.iter().zip(&compiled.configs) {
        for (re, rc) in ce.runs.iter().zip(&cc.runs) {
            assert_eq!(
                re.rtl.verification_report(),
                rc.rtl.verification_report(),
                "{}/{} seed {}",
                ce.config.name,
                re.test,
                re.seed
            );
            assert_eq!(re.rtl.coverage_report(), rc.rtl.coverage_report());
            assert_eq!(re.alignment, rc.alignment);
        }
        // The RTL structural (process/branch) coverage — the paper's code
        // coverage — must agree hit-for-hit.
        assert_eq!(ce.code_coverage_rtl, cc.code_coverage_rtl);
    }
}

#[test]
fn compiled_engine_keeps_worker_count_determinism() {
    let serial = campaign(SimBackend::Compiled, 1);
    let parallel = campaign(SimBackend::Compiled, 4);
    assert_eq!(serial.table(), parallel.table());
    assert_eq!(
        serial.manifest_json().render_pretty(),
        parallel.manifest_json().render_pretty()
    );
}

#[test]
fn compiled_engine_vcd_is_byte_identical_to_event() {
    // The raw waveform itself — not just the alignment summary — must
    // match byte for byte, for every sampled configuration.
    for cfg in sampled_configs(2, 0xD1CE) {
        let tb = Testbench::new(
            cfg.clone(),
            TestbenchOptions {
                capture_vcd: true,
                ..TestbenchOptions::default()
            },
        );
        let spec = catg::tests_lib::random_mixed(10);
        for seed in [1, 7] {
            let mut ev = stbus_rtl::RtlNode::with_engine(cfg.clone(), SimBackend::Event);
            let mut cp = stbus_rtl::RtlNode::with_engine(cfg.clone(), SimBackend::Compiled);
            let re = tb.run(&mut ev, &spec, seed);
            let rc = tb.run(&mut cp, &spec, seed);
            assert_eq!(re.vcd, rc.vcd, "VCD mismatch on {} seed {seed}", cfg.name);
            assert_eq!(re.coverage, rc.coverage, "{} seed {seed}", cfg.name);
            assert_eq!(ev.activity_coverage(), cp.activity_coverage());
        }
    }
}
