//! The injected TLM defect catalogue.
//!
//! The BCA catalogue (`stbus_bca::BcaBug`) exists to prove the functional
//! and cycle-alignment detectors detect; this catalogue plays the same
//! role for the transaction-order phase. Both defects preserve enough
//! functional behavior to slip past the cycle-agnostic checks the TLM
//! phase relies on (the scoreboard deliberately tolerates commit
//! reordering, and a retried transaction still completes), yet both
//! corrupt the committed transaction streams that the transaction-order
//! STBA comparison pins against the RTL.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One injectable TLM defect.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TlmBug {
    /// T1 — the out-of-order commit path lets a newly assembled packet
    /// jump ahead of its queued predecessor from the same initiator at
    /// the same target. *Plausible origin:* a priority-insertion shortcut
    /// in the OOO fast path (locked chunks take the safe path, so chunks
    /// stay atomic). *Invisible functionally:* the scoreboard follows
    /// target-commit order by design, and out-of-order responses are
    /// legal on Type 3. *Caught by:* transaction-order STBA — the
    /// per-initiator request sequence at the target port no longer
    /// matches the RTL's.
    ReorderedCommit,
    /// T2 — when two targets present responses for the same initiator
    /// simultaneously, the losing response is dropped (consumed from the
    /// target, never delivered) and the model's retry path re-commits the
    /// transaction. *Plausible origin:* a lost event in the OOO
    /// response-collision path. *Caught by:* transaction-order STBA —
    /// the replayed commit duplicates transfers at the target port.
    DroppedResponse,
}

impl TlmBug {
    /// Both bugs, in catalogue order.
    pub const ALL: [TlmBug; 2] = [TlmBug::ReorderedCommit, TlmBug::DroppedResponse];

    /// The catalogue label used in the experiment tables.
    pub const fn label(self) -> &'static str {
        match self {
            TlmBug::ReorderedCommit => "T1",
            TlmBug::DroppedResponse => "T2",
        }
    }

    /// A one-line description for reports.
    pub const fn description(self) -> &'static str {
        match self {
            TlmBug::ReorderedCommit => "commit queue reorders same-initiator packets",
            TlmBug::DroppedResponse => "colliding response dropped, transaction replayed",
        }
    }

    /// Which environment component is expected to catch the bug.
    pub const fn expected_detector(self) -> &'static str {
        match self {
            TlmBug::ReorderedCommit => "tx-order alignment",
            TlmBug::DroppedResponse => "tx-order alignment",
        }
    }
}

impl fmt::Display for TlmBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_labeled() {
        assert_eq!(TlmBug::ALL.len(), 2);
        for (k, b) in TlmBug::ALL.iter().enumerate() {
            assert_eq!(b.label(), format!("T{}", k + 1));
            assert!(!b.description().is_empty());
            assert_eq!(b.expected_detector(), "tx-order alignment");
        }
    }

    #[test]
    fn display_joins_label_and_description() {
        let s = TlmBug::ReorderedCommit.to_string();
        assert!(s.starts_with("T1:"));
        assert!(s.contains("reorder"));
    }
}
