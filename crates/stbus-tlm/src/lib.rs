//! The TLM (transaction-level) view of the STBus node — the paper's
//! future work, promoted to a first-class design view.
//!
//! "Future including of SystemC Verification in verification flow will be
//! a great opportunity to add TLM (Transaction Level Modeling)
//! development and verification phase in the flow." This crate supplies
//! that third view: an *untimed* functional model behind the same
//! [`DutView`] seam as the RTL and BCA views, so the whole common
//! environment — harnesses, monitors, checkers, scoreboard, coverage,
//! VCD dump — verifies it unchanged.
//!
//! The TLM view is functionally complete but deliberately carries no
//! micro-architectural timing: every request is granted immediately, no
//! arbitration policy or architecture lane limit exists, and responses
//! route back as soon as targets produce them. The environment therefore
//! signs it off *functionally* (checkers, scoreboard, coverage) while the
//! cycle-level STBA comparison against the RTL correctly rejects it; the
//! transaction-order STBA mode (`stba::compare_transactions`) is the
//! instrument that holds it to account — committed transaction sequences,
//! per port and per initiator, must still match the RTL exactly.
//!
//! Like the BCA view, the TLM view carries an injectable defect catalogue
//! ([`TlmBug`]) used by the mutation-qualification campaign to prove the
//! transaction-order detector actually detects.
//!
//! [`DutView`]: stbus_protocol::DutView

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bugs;
mod node;

pub use bugs::TlmBug;
pub use node::TlmNode;
