//! The untimed functional model behind the common `DutView` seam.

use crate::bugs::TlmBug;
use stbus_protocol::packet::{response_cells, ResponsePacket};
use stbus_protocol::{
    DutInputs, DutOutputs, DutView, NodeConfig, ReqCell, RspCell, TargetId, ViewKind,
};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct PendingRsp {
    responder: usize,
    /// Transaction id of the request packet, used to pair a delivered
    /// (or swallowed) response with exactly this entry.
    tid: u8,
    /// Copy of the committed request cells, kept only while the
    /// dropped-response defect is injected (its retry path re-commits
    /// them); empty otherwise.
    packet: Vec<ReqCell>,
    retried: bool,
    /// True once the packet has been released toward its target (or is
    /// answered internally). On ordered protocols packets wait in the
    /// per-initiator staging queue until every in-flight transaction of
    /// the initiator heads to the same target.
    forwarded: bool,
}

/// One committed request packet queued toward a target port.
#[derive(Clone, Debug)]
struct TgtPacket {
    cells: Vec<ReqCell>,
    sent: usize,
}

impl TgtPacket {
    fn src(&self) -> u8 {
        self.cells[0].src.0
    }

    fn chunked(&self) -> bool {
        self.cells.iter().any(|c| c.lock)
    }
}

struct TlmMetrics {
    steps: telemetry::Counter,
    packets_routed: telemetry::Counter,
    error_responses: telemetry::Counter,
    bug_triggers: telemetry::Counter,
}

/// The untimed transaction-level view of the STBus node.
///
/// It accepts every request immediately, buffers whole packets, forwards
/// them in arrival order (no arbitration policy, no architecture lane
/// limits) and routes responses back with no micro-architectural timing
/// at all.
///
/// # Example
///
/// ```
/// use stbus_tlm::TlmNode;
/// use stbus_protocol::{DutInputs, DutView, NodeConfig, ViewKind};
///
/// let cfg = NodeConfig::reference();
/// let mut node = TlmNode::new(cfg.clone());
/// assert_eq!(node.view_kind(), ViewKind::Tlm);
/// let out = node.step(&DutInputs::idle(&cfg));
/// assert!(!out.target[0].req);
/// ```
pub struct TlmNode {
    config: NodeConfig,
    cycle: u64,
    /// Per-initiator request-packet assembly.
    rx: Vec<Vec<ReqCell>>,
    /// Per-target queue of committed packets.
    tgt_queue: Vec<VecDeque<TgtPacket>>,
    /// Per-initiator staging queue: `(target, packet)` pairs waiting for
    /// the commit gates. On ordered protocols, forwarding a packet to a
    /// second target while responses from a first are still in flight
    /// would let per-target FIFOs invert the initiator's request order —
    /// an R-ORDER violation at best, a cross-target head-of-line deadlock
    /// at worst. On every protocol, a packet must wait while another
    /// initiator's locked chunk is open at its target.
    staged: Vec<VecDeque<(usize, TgtPacket)>>,
    /// Per-target open locked chunk: the owning initiator, set when a
    /// packet with lock cells is committed, cleared when the same
    /// initiator commits its lock-free closer. Other initiators' packets
    /// stay staged meanwhile so the chunk is contiguous in queue order.
    lock_owner: Vec<Option<usize>>,
    /// Per-target packets re-committed by the dropped-response defect,
    /// waiting for the target's chunk lock to clear.
    replay: Vec<VecDeque<TgtPacket>>,
    /// Per-initiator arrival order of responders (ordering on Type 1/2).
    order: Vec<VecDeque<PendingRsp>>,
    /// Per-initiator internal error responses.
    err_queue: Vec<VecDeque<(Vec<RspCell>, usize)>>,
    /// Per-initiator locked responder during a multi-cell response.
    rsp_route: Vec<Option<usize>>,
    /// Per-initiator responder presented but not yet accepted.
    rsp_presented: Vec<Option<usize>>,
    /// Per-initiator response being swallowed by the dropped-response
    /// defect: the losing responder and the request cells to re-commit.
    drop_route: Vec<Option<(usize, Vec<ReqCell>)>>,
    /// Wire-hold state.
    tgt_cell_hold: Vec<ReqCell>,
    init_rsp_hold: Vec<RspCell>,
    bug: Option<TlmBug>,
    metrics: Option<TlmMetrics>,
}

impl TlmNode {
    /// Builds the functional view for a configuration.
    pub fn new(config: NodeConfig) -> Self {
        let ni = config.n_initiators;
        let nt = config.n_targets;
        TlmNode {
            cycle: 0,
            rx: vec![Vec::new(); ni],
            tgt_queue: (0..nt).map(|_| VecDeque::new()).collect(),
            staged: (0..ni).map(|_| VecDeque::new()).collect(),
            lock_owner: vec![None; nt],
            replay: (0..nt).map(|_| VecDeque::new()).collect(),
            order: (0..ni).map(|_| VecDeque::new()).collect(),
            err_queue: (0..ni).map(|_| VecDeque::new()).collect(),
            rsp_route: vec![None; ni],
            rsp_presented: vec![None; ni],
            drop_route: vec![None; ni],
            tgt_cell_hold: vec![ReqCell::default(); nt],
            init_rsp_hold: vec![RspCell::default(); ni],
            bug: None,
            metrics: None,
            config,
        }
    }

    /// Injects one catalogue defect; active from the next reset-free
    /// cycle on and preserved across [`DutView::reset`].
    pub fn inject_bug(&mut self, bug: TlmBug) {
        self.bug = Some(bug);
    }

    /// Cycles stepped since construction or reset.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    fn enqueue_packet(&mut self, i: usize, cells: Vec<ReqCell>) {
        let first = cells[0];
        match self.config.address_map.decode(first.addr) {
            Some(TargetId(t)) => {
                let t = t as usize;
                // T2 keeps a replay copy per packet, except for locked
                // packets: replaying one lock-holding packet out of a
                // chunk would break chunk contiguity at the target and
                // muddy the defect's signature with R-CHUNK noise.
                let keep_copy =
                    self.bug == Some(TlmBug::DroppedResponse) && !cells.iter().any(|c| c.lock);
                self.order[i].push_back(PendingRsp {
                    responder: t,
                    tid: cells[0].tid.0,
                    packet: if keep_copy { cells.clone() } else { Vec::new() },
                    retried: false,
                    forwarded: false,
                });
                if let Some(m) = &self.metrics {
                    m.packets_routed.inc();
                }
                // Every packet goes through the staging queue; the commit
                // gates in `step` release it toward the target.
                self.staged[i].push_back((t, TgtPacket { cells, sent: 0 }));
            }
            None => {
                // Same per-packet split on the internal error path: each
                // request packet in the (possibly chunked) burst earns its
                // own error response.
                let nt = self.config.n_targets;
                let mut start = 0;
                for (idx, cell) in cells.iter().enumerate() {
                    if cell.eop {
                        let head = cells[start];
                        self.order[i].push_back(PendingRsp {
                            responder: nt,
                            tid: head.tid.0,
                            packet: Vec::new(),
                            retried: true,
                            forwarded: true,
                        });
                        let n = response_cells(
                            head.opcode,
                            self.config.protocol,
                            self.config.bus_bytes,
                        );
                        let rsp = ResponsePacket::error(head.src, head.tid, n);
                        self.err_queue[i].push_back((rsp.cells().to_vec(), 0));
                        if let Some(m) = &self.metrics {
                            m.error_responses.inc();
                        }
                        start = idx + 1;
                    }
                }
            }
        }
    }
}

impl DutView for TlmNode {
    fn config(&self) -> &NodeConfig {
        &self.config
    }

    fn view_kind(&self) -> ViewKind {
        ViewKind::Tlm
    }

    fn reset(&mut self) {
        let bug = self.bug;
        let metrics = self.metrics.take();
        *self = TlmNode::new(self.config.clone());
        self.bug = bug;
        self.metrics = metrics;
    }

    fn attach_metrics(&mut self, registry: &telemetry::MetricsRegistry) {
        self.metrics = Some(TlmMetrics {
            steps: registry.counter("tlm.steps"),
            packets_routed: registry.counter("tlm.packets_routed"),
            error_responses: registry.counter("tlm.error_responses"),
            bug_triggers: registry.counter("tlm.bug_triggers"),
        });
    }

    fn step(&mut self, inputs: &DutInputs) -> DutOutputs {
        let cfg = self.config.clone();
        let ni = cfg.n_initiators;
        let nt = cfg.n_targets;
        assert_eq!(inputs.initiator.len(), ni, "initiator port count mismatch");
        assert_eq!(inputs.target.len(), nt, "target port count mismatch");
        let mut out = DutOutputs::idle(&cfg);
        if let Some(m) = &self.metrics {
            m.steps.inc();
        }

        // Request side: accept everything immediately; each packet is
        // committed on its eop cell so response-paced drivers keep moving
        // even mid-chunk.
        for i in 0..ni {
            let p = &inputs.initiator[i];
            if p.req {
                out.initiator[i].gnt = true;
                self.rx[i].push(p.cell);
                if p.cell.eop {
                    let cells = std::mem::take(&mut self.rx[i]);
                    self.enqueue_packet(i, cells);
                }
            }
        }

        // Commit gates: release an initiator's staged packets, oldest
        // first. A packet waits while another initiator's locked chunk is
        // open at its target (chunk contiguity is queue order). On ordered
        // protocols it additionally waits until every in-flight
        // transaction of its initiator heads to the same target: a
        // target's FIFO head is then always the oldest response its
        // initiator is waiting for, so request order is preserved and no
        // cross-target head-of-line cycle can form. Internal error
        // responses (responder == n_targets) never occupy a target FIFO
        // and are exempt. T2's replayed packets rejoin when no chunk is
        // open at their target.
        let ordered = !cfg.protocol.allows_out_of_order();
        for i in 0..ni {
            while let Some((t, _)) = self.staged[i].front() {
                let t = *t;
                if self.lock_owner[t].is_some_and(|o| o != i) {
                    break;
                }
                if ordered {
                    let clear = self.order[i]
                        .iter()
                        .filter(|p| p.forwarded && p.responder < nt)
                        .all(|p| p.responder == t);
                    if !clear {
                        break;
                    }
                }
                let (_, pkt) = self.staged[i].pop_front().expect("front just seen");
                for p in self.order[i].iter_mut() {
                    if !p.forwarded {
                        p.forwarded = true;
                        break;
                    }
                }
                if pkt.chunked() {
                    self.lock_owner[t] = Some(i);
                } else if self.lock_owner[t] == Some(i) {
                    self.lock_owner[t] = None;
                }
                // T1: the OOO fast path lets a fresh packet jump ahead of
                // its queued same-initiator predecessor. Locked chunks and
                // the in-flight front packet take the safe path.
                let jump = self.bug == Some(TlmBug::ReorderedCommit)
                    && !ordered
                    && !pkt.chunked()
                    && self.tgt_queue[t].len() >= 2
                    && self.tgt_queue[t]
                        .back()
                        .is_some_and(|b| b.sent == 0 && b.src() == pkt.src() && !b.chunked());
                if jump {
                    let at = self.tgt_queue[t].len() - 1;
                    self.tgt_queue[t].insert(at, pkt);
                    if let Some(m) = &self.metrics {
                        m.bug_triggers.inc();
                    }
                } else {
                    self.tgt_queue[t].push_back(pkt);
                }
            }
        }
        for t in 0..nt {
            if self.lock_owner[t].is_none() {
                while let Some(pkt) = self.replay[t].pop_front() {
                    self.tgt_queue[t].push_back(pkt);
                }
            }
        }

        // Forward to targets: head cell per target, all targets in
        // parallel (no architecture limits in the functional view).
        for t in 0..nt {
            if let Some(pkt) = self.tgt_queue[t].front() {
                let cell = pkt.cells[pkt.sent];
                out.target[t].req = true;
                out.target[t].cell = cell;
                if inputs.target[t].gnt {
                    self.tgt_cell_hold[t] = cell;
                    let pkt = self.tgt_queue[t].front_mut().expect("just seen");
                    pkt.sent += 1;
                    if pkt.sent == pkt.cells.len() {
                        self.tgt_queue[t].pop_front();
                    }
                }
            } else {
                out.target[t].cell = self.tgt_cell_hold[t];
            }
        }

        // Response side: fixed smallest-index selection with packet-route
        // and presentation holds; ordering enforced for Type 1/2.
        let ordered = !cfg.protocol.allows_out_of_order();
        for j in 0..ni {
            let present = |node: &Self, r: usize| -> Option<RspCell> {
                if r < nt {
                    let tp = &inputs.target[r];
                    (tp.r_req && tp.r_cell.src.0 as usize == j).then_some(tp.r_cell)
                } else {
                    node.err_queue[j].front().map(|(cells, sent)| cells[*sent])
                }
            };

            // T2: arm the response-collision drop. When two targets
            // present responses for this initiator at once, the losing
            // one is marked to be swallowed — consumed from the target
            // without ever reaching the initiator — and its transaction
            // re-committed once the swallow completes.
            if self.bug == Some(TlmBug::DroppedResponse) && !ordered && self.drop_route[j].is_none()
            {
                let presenting: Vec<usize> =
                    (0..nt).filter(|r| present(self, *r).is_some()).collect();
                if presenting.len() >= 2 {
                    // The victim entry is paired by the tid of the response
                    // actually being swallowed, so the replay re-commits
                    // exactly that transaction and no other.
                    let victim = presenting.iter().rev().copied().find(|r| {
                        let tid = inputs.target[*r].r_cell.tid.0;
                        *r != presenting[0]
                            && Some(*r) != self.rsp_route[j]
                            && Some(*r) != self.rsp_presented[j]
                            && self.order[j].iter().any(|p| {
                                p.responder == *r
                                    && p.tid == tid
                                    && !p.retried
                                    && !p.packet.is_empty()
                            })
                    });
                    if let Some(v) = victim {
                        let tid = inputs.target[v].r_cell.tid.0;
                        let entry = self.order[j]
                            .iter_mut()
                            .find(|p| {
                                p.responder == v
                                    && p.tid == tid
                                    && !p.retried
                                    && !p.packet.is_empty()
                            })
                            .expect("victim has an entry");
                        entry.retried = true;
                        let packet = std::mem::take(&mut entry.packet);
                        self.drop_route[j] = Some((v, packet));
                        if let Some(m) = &self.metrics {
                            m.bug_triggers.inc();
                        }
                    }
                }
            }

            let swallowing = self.drop_route[j].as_ref().map(|(r, _)| *r);
            let mut eligible: Vec<usize> = (0..=nt)
                .filter(|r| Some(*r) != swallowing && present(self, *r).is_some())
                .collect();
            if let Some(locked) = self.rsp_route[j] {
                eligible.retain(|r| *r == locked);
            } else if ordered {
                let front = self.order[j].front().map(|p| p.responder);
                eligible.retain(|r| Some(*r) == front);
            }
            let winner = match self.rsp_presented[j] {
                Some(r) if eligible.contains(&r) => Some(r),
                _ => eligible.first().copied(),
            };
            let mut delivered = false;
            if let Some(r) = winner {
                let cell = present(self, r).expect("winner presents");
                out.initiator[j].r_req = true;
                out.initiator[j].r_cell = cell;
                if inputs.initiator[j].r_gnt {
                    self.rsp_presented[j] = None;
                    self.init_rsp_hold[j] = cell;
                    delivered = true;
                    if r < nt {
                        out.target[r].r_gnt = true;
                    } else {
                        let (cells, sent) = self.err_queue[j].front_mut().expect("presented");
                        *sent += 1;
                        if *sent == cells.len() {
                            self.err_queue[j].pop_front();
                        }
                    }
                    if cell.eop {
                        self.rsp_route[j] = None;
                        // Pair the delivered response with its own entry by
                        // (responder, tid); responder-only as a fallback so
                        // bookkeeping stays sane on off-protocol stimulus.
                        if let Some(pos) = self.order[j]
                            .iter()
                            .position(|p| p.responder == r && p.tid == cell.tid.0)
                            .or_else(|| self.order[j].iter().position(|p| p.responder == r))
                        {
                            self.order[j].remove(pos);
                        }
                    } else {
                        self.rsp_route[j] = Some(r);
                    }
                } else {
                    self.rsp_presented[j] = Some(r);
                }
            } else {
                out.initiator[j].r_cell = self.init_rsp_hold[j];
            }

            // T2: swallow one cell per cycle, but never in a cycle that
            // also delivers a response to this initiator — a delivered
            // response's responder is identified by the simultaneous
            // target-port transfer, so a swallow grant alongside any
            // delivery (real target or internal error) would misattribute
            // the delivered response to the swallowed target.
            if !delivered {
                if let Some((v, _)) = self.drop_route[j] {
                    let tp = &inputs.target[v];
                    if tp.r_req && tp.r_cell.src.0 as usize == j {
                        out.target[v].r_gnt = true;
                        if tp.r_cell.eop {
                            let (_, packet) = self.drop_route[j].take().expect("swallowing");
                            if !packet.is_empty() {
                                self.replay[v].push_back(TgtPacket {
                                    cells: packet,
                                    sent: 0,
                                });
                            }
                        }
                    }
                }
            }
        }

        self.cycle += 1;
        out
    }
}

impl std::fmt::Debug for TlmNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlmNode")
            .field("config", &self.config.name)
            .field("cycle", &self.cycle)
            .field("bug", &self.bug)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::packet::{PacketParams, RequestPacket};
    use stbus_protocol::{InitiatorId, Opcode, TransactionId, TransferSize};

    fn cfg() -> NodeConfig {
        NodeConfig::reference()
    }

    fn load_cell(c: &NodeConfig, i: u8, addr: u64, tid: u8) -> ReqCell {
        RequestPacket::build(
            Opcode::load(TransferSize::B8),
            addr,
            &[],
            PacketParams {
                bus_bytes: c.bus_bytes,
                protocol: c.protocol,
                endianness: c.endianness,
            },
            InitiatorId(i),
            TransactionId(tid),
            0,
            false,
        )
        .unwrap()
        .cells()[0]
    }

    #[test]
    fn accepts_all_initiators_simultaneously() {
        // The functional view has no arbitration: everyone is granted at
        // once — impossible on the cycle-accurate views with one target.
        let c = cfg();
        let mut node = TlmNode::new(c.clone());
        let mut inputs = DutInputs::idle(&c);
        for i in 0..3u8 {
            inputs.initiator[i as usize].req = true;
            inputs.initiator[i as usize].cell = load_cell(&c, i, 0x40 * (i as u64 + 1), i);
        }
        let out = node.step(&inputs);
        assert!(out.initiator.iter().all(|p| p.gnt), "TLM grants everyone");
    }

    #[test]
    fn forwards_and_responds_functionally() {
        let c = cfg();
        let mut node = TlmNode::new(c.clone());
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[0].req = true;
        inputs.initiator[0].cell = load_cell(&c, 0, 0x0100_0040, 5);
        inputs.initiator[0].r_gnt = true;
        inputs.target[1].gnt = true;
        // The TLM view is combinational end to end: the forwarded cell
        // appears at target 1 within the same step.
        let out = node.step(&inputs);
        assert!(out.initiator[0].gnt);
        assert!(out.target[1].req);
        assert_eq!(out.target[1].cell.tid, TransactionId(5));

        // Target responds; the response routes straight back.
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[0].r_gnt = true;
        inputs.target[1].r_req = true;
        inputs.target[1].r_cell = RspCell::ok(InitiatorId(0), TransactionId(5), true);
        let out = node.step(&inputs);
        assert!(out.initiator[0].r_req);
        assert_eq!(out.initiator[0].r_cell.tid, TransactionId(5));
        assert!(out.target[1].r_gnt);
    }

    #[test]
    fn unmapped_gets_error_response() {
        let c = cfg();
        let unmapped = c.address_map.unmapped_address().unwrap();
        let mut node = TlmNode::new(c.clone());
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[2].req = true;
        inputs.initiator[2].cell = {
            let mut cell = load_cell(&c, 2, 0, 9);
            cell.addr = unmapped;
            cell
        };
        inputs.initiator[2].r_gnt = true;
        // Combinational: the internal error response is delivered in the
        // same step the request was absorbed.
        let out = node.step(&inputs);
        assert!(out.initiator[2].r_req);
        assert_eq!(out.initiator[2].r_cell.kind, stbus_protocol::RspKind::Error);
        assert_eq!(out.initiator[2].r_cell.tid, TransactionId(9));
    }

    #[test]
    fn chunk_packets_stay_contiguous_at_the_target() {
        let c = cfg();
        let mut node = TlmNode::new(c.clone());
        // I0 opens a chunk (lock=1) at target 0; I1 interleaves a packet
        // at the same target before I0 closes the chunk.
        let mut inputs = DutInputs::idle(&c);
        let mut locked = load_cell(&c, 0, 0x0, 1);
        locked.lock = true;
        inputs.initiator[0].req = true;
        inputs.initiator[0].cell = locked;
        inputs.initiator[1].req = true;
        inputs.initiator[1].cell = load_cell(&c, 1, 0x40, 2);
        node.step(&inputs);
        // I0 closes the chunk.
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[0].req = true;
        inputs.initiator[0].cell = load_cell(&c, 0, 0x8, 3);
        node.step(&inputs);

        // Drain target 0's queue; the two chunk cells must be adjacent.
        let mut sources = Vec::new();
        for _ in 0..6 {
            let mut inputs = DutInputs::idle(&c);
            inputs.target[0].gnt = true;
            let out = node.step(&inputs);
            if out.target[0].req {
                sources.push(out.target[0].cell.src.0);
            }
        }
        // The chunk's two packets go back to back; I1's packet committed
        // while the chunk was open, so it waits until the chunk closes.
        assert_eq!(
            sources,
            vec![0, 0, 1],
            "chunk cells contiguous: {sources:?}"
        );
    }

    #[test]
    fn reordered_commit_bug_swaps_same_initiator_packets() {
        // Commit three single-cell packets to target 0 while it refuses
        // grants: I1 first, then I0 twice. The defect inserts I0's second
        // packet ahead of its first; the clean model keeps arrival order.
        let c = cfg();
        let drain = |node: &mut TlmNode| {
            let mut tids = Vec::new();
            for _ in 0..6 {
                let mut inputs = DutInputs::idle(&c);
                inputs.target[0].gnt = true;
                let out = node.step(&inputs);
                if out.target[0].req {
                    tids.push(out.target[0].cell.tid.0);
                }
            }
            tids
        };
        let send = |node: &mut TlmNode, i: u8, tid: u8| {
            let mut inputs = DutInputs::idle(&c);
            inputs.initiator[i as usize].req = true;
            inputs.initiator[i as usize].cell = load_cell(&c, i, 0x8 * tid as u64, tid);
            node.step(&inputs);
        };

        let mut clean = TlmNode::new(c.clone());
        let mut buggy = TlmNode::new(c.clone());
        buggy.inject_bug(TlmBug::ReorderedCommit);
        for node in [&mut clean, &mut buggy] {
            send(node, 1, 1);
            send(node, 0, 2);
            send(node, 0, 3);
        }
        assert_eq!(drain(&mut clean), vec![1, 2, 3]);
        assert_eq!(drain(&mut buggy), vec![1, 3, 2], "T1 jumps the queue");
    }

    #[test]
    fn dropped_response_bug_swallows_and_replays() {
        // Two outstanding loads from I0, one per target; both targets
        // answer in the same cycle. The defect consumes the losing
        // response at the target port without delivering it, then
        // re-commits the transaction.
        let c = cfg();
        let mut node = TlmNode::new(c.clone());
        node.inject_bug(TlmBug::DroppedResponse);
        for (addr, tid) in [(0x40u64, 1u8), (0x0100_0040, 2)] {
            let mut inputs = DutInputs::idle(&c);
            inputs.initiator[0].req = true;
            inputs.initiator[0].cell = load_cell(&c, 0, addr, tid);
            inputs.target[0].gnt = true;
            inputs.target[1].gnt = true;
            node.step(&inputs);
        }

        // Collision: target 0 wins, target 1 is marked for the swallow.
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[0].r_gnt = true;
        inputs.target[0].r_req = true;
        inputs.target[0].r_cell = RspCell::ok(InitiatorId(0), TransactionId(1), true);
        inputs.target[1].r_req = true;
        inputs.target[1].r_cell = RspCell::ok(InitiatorId(0), TransactionId(2), true);
        let out = node.step(&inputs);
        assert!(out.initiator[0].r_req);
        assert_eq!(out.initiator[0].r_cell.tid, TransactionId(1));
        assert!(out.target[0].r_gnt, "winner delivered normally");
        assert!(!out.target[1].r_gnt, "loser waits for a quiet cycle");

        // Quiet cycle: the loser is consumed without any delivery.
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[0].r_gnt = true;
        inputs.target[1].r_req = true;
        inputs.target[1].r_cell = RspCell::ok(InitiatorId(0), TransactionId(2), true);
        let out = node.step(&inputs);
        assert!(out.target[1].r_gnt, "swallowed at the target port");
        assert!(!out.initiator[0].r_req, "never reaches the initiator");

        // The transaction was re-committed: the request replays.
        let out = node.step(&DutInputs::idle(&c));
        assert!(out.target[1].req, "replayed commit");
        assert_eq!(out.target[1].cell.tid, TransactionId(2));
    }

    #[test]
    fn metrics_and_bug_survive_reset() {
        let c = cfg();
        let registry = telemetry::MetricsRegistry::new();
        let mut node = TlmNode::new(c.clone());
        node.attach_metrics(&registry);
        node.inject_bug(TlmBug::ReorderedCommit);
        node.step(&DutInputs::idle(&c));
        node.reset();
        node.step(&DutInputs::idle(&c));
        assert_eq!(registry.snapshot().counters["tlm.steps"], 2);
        assert_eq!(node.bug, Some(TlmBug::ReorderedCommit));
    }
}
