//! Property: anything the writer emits, the parser reads back exactly.

use proptest::prelude::*;
use stbus_vcd::{Scalar, VcdDocument, VcdValue, VcdWriter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn writer_parser_round_trip(
        widths in proptest::collection::vec(1usize..=70, 1..6),
        changes in proptest::collection::vec((0u64..50, 0usize..6, any::<u64>()), 0..60),
    ) {
        let mut w = VcdWriter::new(Vec::new(), "1ns");
        w.push_scope("top");
        let vars: Vec<_> = widths
            .iter()
            .enumerate()
            .map(|(k, width)| (w.add_var(&format!("v{k}"), *width), *width))
            .collect();
        w.pop_scope();
        w.begin().unwrap();

        // Emit the changes in nondecreasing time order.
        let mut sorted = changes.clone();
        sorted.sort_by_key(|(t, _, _)| *t);
        let mut expected: Vec<(u64, usize, u64)> = Vec::new();
        for (t, var_idx, value) in &sorted {
            let k = var_idx % vars.len();
            let (var, width) = vars[k];
            let masked = if width >= 64 { *value } else { value & ((1u64 << width) - 1) };
            w.change_value(*t, var, &VcdValue::from_u64(masked, width.min(64)))
                .unwrap();
            expected.push((*t, k, masked));
        }
        let buf = w.finish(60).unwrap();
        let doc = VcdDocument::parse(std::str::from_utf8(&buf).unwrap()).unwrap();

        // The last change at or before any time must read back.
        for (k, (_, width)) in vars.iter().enumerate() {
            let id = doc.var_by_name(&format!("top.v{k}")).expect("declared");
            prop_assert_eq!(doc.var(id).width, *width);
            let last = expected
                .iter()
                .rfind(|(_, kk, _)| *kk == k)
                .map(|(_, _, v)| *v);
            match last {
                Some(v) => {
                    let got = doc.value_at(id, 60);
                    // Widths above 64 read back the low word we wrote.
                    let want = if *width >= 64 { v } else { v & ((1u64 << *width) - 1) };
                    prop_assert_eq!(got.as_u64(), Some(want));
                }
                None => {
                    prop_assert!(doc.value_at(id, 60).has_unknown());
                }
            }
        }
        prop_assert_eq!(doc.end_time(), 60);
    }

    #[test]
    fn scalar_changes_round_trip(seq in proptest::collection::vec(any::<bool>(), 1..40)) {
        let mut w = VcdWriter::new(Vec::new(), "1ns");
        let v = w.add_var("s", 1);
        w.begin().unwrap();
        for (t, b) in seq.iter().enumerate() {
            w.change_scalar(t as u64, v, Scalar::from_bool(*b)).unwrap();
        }
        let buf = w.finish(seq.len() as u64).unwrap();
        let doc = VcdDocument::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let id = doc.var_by_name("s").unwrap();
        for (t, b) in seq.iter().enumerate() {
            prop_assert_eq!(doc.value_at(id, t as u64).as_u64(), Some(*b as u64));
        }
    }
}
