//! Streaming VCD writer.

use crate::document::VarId;
use crate::value::{Scalar, VcdValue};
use std::io::{self, Write};

/// Encodes a variable index as a VCD identifier code (printable ASCII
/// 33..=126, base 94, shortest-first).
pub(crate) fn id_code(index: usize) -> String {
    let mut n = index;
    let mut out = String::new();
    loop {
        out.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1; // bijective numeration so "!", "!!" are distinct
    }
    out
}

struct VarDecl {
    name: String,
    width: usize,
}

/// A streaming VCD writer.
///
/// Declare scopes and variables first, call [`VcdWriter::begin`], then emit
/// changes in nondecreasing time order and [`VcdWriter::finish`].
///
/// Generic writers can be passed by value or as `&mut W` (the standard
/// `Write for &mut W` impl applies).
pub struct VcdWriter<W: Write> {
    out: W,
    timescale: String,
    vars: Vec<VarDecl>,
    scopes: Vec<String>,
    /// Scope stack snapshots: declarations record the full path.
    header_ops: Vec<HeaderOp>,
    current_time: Option<u64>,
    began: bool,
}

enum HeaderOp {
    Push(String),
    Pop,
    Var(usize),
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer with a `$timescale` such as `"1ns"`.
    pub fn new(out: W, timescale: &str) -> Self {
        VcdWriter {
            out,
            timescale: timescale.to_owned(),
            vars: Vec::new(),
            scopes: Vec::new(),
            header_ops: Vec::new(),
            current_time: None,
            began: false,
        }
    }

    /// Opens a named scope (`$scope module name $end`).
    ///
    /// # Panics
    ///
    /// Panics if called after [`VcdWriter::begin`].
    pub fn push_scope(&mut self, name: &str) {
        assert!(!self.began, "scopes must be declared before begin()");
        self.scopes.push(name.to_owned());
        self.header_ops.push(HeaderOp::Push(name.to_owned()));
    }

    /// Closes the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open or after [`VcdWriter::begin`].
    pub fn pop_scope(&mut self) {
        assert!(!self.began, "scopes must be declared before begin()");
        assert!(
            self.scopes.pop().is_some(),
            "pop_scope without matching push"
        );
        self.header_ops.push(HeaderOp::Pop);
    }

    /// Declares a wire of `width` bits in the current scope.
    ///
    /// # Panics
    ///
    /// Panics if called after [`VcdWriter::begin`] or with `width == 0`.
    pub fn add_var(&mut self, name: &str, width: usize) -> VarId {
        assert!(!self.began, "vars must be declared before begin()");
        assert!(width > 0, "variable width must be nonzero");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_owned(),
            width,
        });
        self.header_ops.push(HeaderOp::Var(id.0 as usize));
        id
    }

    /// Writes the header, `$enddefinitions` and the all-`x` `$dumpvars`
    /// block.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn begin(&mut self) -> io::Result<()> {
        assert!(!self.began, "begin() called twice");
        self.began = true;
        writeln!(self.out, "$date\n  (stbus-verification)\n$end")?;
        writeln!(self.out, "$version\n  stbus-vcd 0.1\n$end")?;
        writeln!(self.out, "$timescale {} $end", self.timescale)?;
        let ops = std::mem::take(&mut self.header_ops);
        for op in &ops {
            match op {
                HeaderOp::Push(name) => writeln!(self.out, "$scope module {name} $end")?,
                HeaderOp::Pop => writeln!(self.out, "$upscope $end")?,
                HeaderOp::Var(i) => {
                    let v = &self.vars[*i];
                    writeln!(
                        self.out,
                        "$var wire {} {} {} $end",
                        v.width,
                        id_code(*i),
                        v.name
                    )?;
                }
            }
        }
        writeln!(self.out, "$enddefinitions $end")?;
        writeln!(self.out, "$dumpvars")?;
        for i in 0..self.vars.len() {
            let width = self.vars[i].width;
            self.write_value(i, &VcdValue::unknown(width))?;
        }
        writeln!(self.out, "$end")?;
        let _ = ops;
        Ok(())
    }

    fn advance_time(&mut self, time: u64) -> io::Result<()> {
        match self.current_time {
            Some(t) if t == time => Ok(()),
            Some(t) if t > time => panic!("vcd time moved backwards: {t} -> {time}"),
            _ => {
                self.current_time = Some(time);
                writeln!(self.out, "#{time}")
            }
        }
    }

    fn write_value(&mut self, index: usize, value: &VcdValue) -> io::Result<()> {
        let width = self.vars[index].width;
        if width == 1 {
            writeln!(self.out, "{}{}", value.bit(0).to_char(), id_code(index))
        } else {
            writeln!(self.out, "b{} {}", value.to_binary_string(), id_code(index))
        }
    }

    /// Emits a scalar change at `time`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `begin` was not called or time moves backwards.
    pub fn change_scalar(&mut self, time: u64, var: VarId, value: Scalar) -> io::Result<()> {
        assert!(self.began, "change before begin()");
        self.advance_time(time)?;
        self.write_value(var.0 as usize, &VcdValue::scalar(value))
    }

    /// Emits a vector change at `time` from an integer value.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn change_vector(
        &mut self,
        time: u64,
        var: VarId,
        width: usize,
        value: u64,
    ) -> io::Result<()> {
        self.change_value(time, var, &VcdValue::from_u64(value, width))
    }

    /// Emits an arbitrary value change at `time`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `begin` was not called or time moves backwards.
    pub fn change_value(&mut self, time: u64, var: VarId, value: &VcdValue) -> io::Result<()> {
        assert!(self.began, "change before begin()");
        self.advance_time(time)?;
        self.write_value(var.0 as usize, value)
    }

    /// Writes a final timestamp and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self, end_time: u64) -> io::Result<W> {
        if self.began {
            self.advance_time(end_time)?;
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// The number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let code = id_code(i);
            assert!(code.chars().all(|c| (33..=126).contains(&(c as u32))));
            assert!(seen.insert(code), "duplicate id code at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn writes_header_and_changes() {
        let mut buf = Vec::new();
        let mut w = VcdWriter::new(&mut buf, "1ns");
        w.push_scope("tb");
        let a = w.add_var("a", 1);
        let d = w.add_var("data", 16);
        w.pop_scope();
        w.begin().unwrap();
        w.change_scalar(0, a, Scalar::V1).unwrap();
        w.change_vector(3, d, 16, 0xBEEF).unwrap();
        w.finish(5).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$scope module tb $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 16 \" data $end"));
        assert!(text.contains("#0\n1!"));
        assert!(text.contains("#3\nb1011111011101111 \""));
        assert!(text.ends_with("#5\n"));
    }

    #[test]
    fn same_time_changes_share_timestamp() {
        let mut buf = Vec::new();
        let mut w = VcdWriter::new(&mut buf, "1ns");
        let a = w.add_var("a", 1);
        let b = w.add_var("b", 1);
        w.begin().unwrap();
        w.change_scalar(7, a, Scalar::V1).unwrap();
        w.change_scalar(7, b, Scalar::V0).unwrap();
        w.finish(8).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("#7").count(), 1);
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn backwards_time_panics() {
        let mut buf = Vec::new();
        let mut w = VcdWriter::new(&mut buf, "1ns");
        let a = w.add_var("a", 1);
        w.begin().unwrap();
        w.change_scalar(5, a, Scalar::V1).unwrap();
        let _ = w.change_scalar(4, a, Scalar::V0);
    }

    #[test]
    #[should_panic(expected = "width must be nonzero")]
    fn zero_width_var_panics() {
        let mut buf = Vec::new();
        let mut w = VcdWriter::new(&mut buf, "1ns");
        let _ = w.add_var("a", 0);
    }
}
