//! In-memory parsed VCD documents.

use crate::error::ParseVcdError;
use crate::value::{Scalar, VcdValue};
use std::collections::HashMap;

/// Identifies a variable inside one [`VcdDocument`] (or, on the writer
/// side, one [`VcdWriter`](crate::VcdWriter)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration data of one variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarInfo {
    /// Dotted full path, e.g. `tb.init0.req`.
    pub path: String,
    /// Declared bit width.
    pub width: usize,
    /// The identifier code used in the change section.
    pub code: String,
}

/// A fully parsed VCD document with per-variable change lists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VcdDocument {
    timescale: Option<String>,
    vars: Vec<VarInfo>,
    by_path: HashMap<String, VarId>,
    /// Per-var (time, value), nondecreasing in time.
    changes: Vec<Vec<(u64, VcdValue)>>,
    end_time: u64,
}

impl VcdDocument {
    /// Parses VCD text.
    ///
    /// Supports the subset emitted by common simulators: `$date`,
    /// `$version`, `$comment`, `$timescale`, `$scope`/`$upscope`, `$var`,
    /// `$enddefinitions`, `$dumpvars`/`$dumpall`/`$dumpon`/`$dumpoff`
    /// blocks, `#` timestamps, scalar and `b`-vector changes (`r`-real
    /// changes are rejected).
    ///
    /// # Errors
    ///
    /// Returns [`ParseVcdError`] with a line number on malformed input.
    pub fn parse(text: &str) -> Result<VcdDocument, ParseVcdError> {
        Parser::new(text).run()
    }

    /// The `$timescale` string, if present.
    pub fn timescale(&self) -> Option<&str> {
        self.timescale.as_deref()
    }

    /// All declared variables, in declaration order.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Looks up a variable by dotted path.
    pub fn var_by_name(&self, path: &str) -> Option<VarId> {
        self.by_path.get(path).copied()
    }

    /// Declaration info for a variable.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// The change list of a variable: `(time, value)` pairs in time order.
    pub fn changes(&self, id: VarId) -> &[(u64, VcdValue)] {
        &self.changes[id.index()]
    }

    /// The last timestamp in the dump.
    pub fn end_time(&self) -> u64 {
        self.end_time
    }

    /// The value of a variable at `time` (the most recent change at or
    /// before `time`); all-`x` before the first change.
    pub fn value_at(&self, id: VarId, time: u64) -> VcdValue {
        let list = &self.changes[id.index()];
        match list.partition_point(|(t, _)| *t <= time) {
            0 => VcdValue::unknown(self.vars[id.index()].width),
            n => list[n - 1].1.clone(),
        }
    }

    /// Samples a variable at `t0, t0+step, …` for `count` points.
    ///
    /// This is what the analyzer uses to compare two dumps cycle by cycle.
    pub fn sample_series(&self, id: VarId, t0: u64, step: u64, count: usize) -> Vec<VcdValue> {
        let mut out = Vec::new();
        self.sample_series_into(id, t0, step, count, &mut out);
        out
    }

    /// [`sample_series`](Self::sample_series) into a caller-owned buffer
    /// (cleared first), so batch comparisons can reuse one allocation
    /// across variables.
    pub fn sample_series_into(
        &self,
        id: VarId,
        t0: u64,
        step: u64,
        count: usize,
        out: &mut Vec<VcdValue>,
    ) {
        out.clear();
        out.reserve(count);
        let mut cursor = self.cursor(id);
        for k in 0..count {
            out.push(cursor.advance_to(t0 + step * k as u64).clone());
        }
    }

    /// A forward-only sampling cursor over one variable's change list.
    ///
    /// Walking a monotone time grid through a cursor is O(changes +
    /// samples) for the whole series and allocates nothing, where
    /// repeated [`value_at`](Self::value_at) calls would binary-search
    /// (and clone) per sample — this is the analyzer's hot path.
    pub fn cursor(&self, id: VarId) -> VarCursor<'_> {
        VarCursor {
            list: &self.changes[id.index()],
            unknown: VcdValue::unknown(self.vars[id.index()].width),
            idx: 0,
        }
    }
}

/// See [`VcdDocument::cursor`].
pub struct VarCursor<'a> {
    list: &'a [(u64, VcdValue)],
    unknown: VcdValue,
    idx: usize,
}

impl VarCursor<'_> {
    /// The value at `time` — the most recent change at or before it,
    /// all-`x` before the first change. `time` must be nondecreasing
    /// across calls (earlier times return the value at the cursor's
    /// high-water mark instead).
    pub fn advance_to(&mut self, time: u64) -> &VcdValue {
        while self.idx < self.list.len() && self.list[self.idx].0 <= time {
            self.idx += 1;
        }
        if self.idx == 0 {
            &self.unknown
        } else {
            &self.list[self.idx - 1].1
        }
    }
}

struct Parser<'a> {
    lines: std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>,
    timescale: Option<String>,
    vars: Vec<VarInfo>,
    by_path: HashMap<String, VarId>,
    by_code: HashMap<String, VarId>,
    changes: Vec<Vec<(u64, VcdValue)>>,
    scopes: Vec<String>,
    time: u64,
    end_time: u64,
    in_definitions: bool,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().enumerate().peekable(),
            timescale: None,
            vars: Vec::new(),
            by_path: HashMap::new(),
            by_code: HashMap::new(),
            changes: Vec::new(),
            scopes: Vec::new(),
            time: 0,
            end_time: 0,
            in_definitions: true,
        }
    }

    fn run(mut self) -> Result<VcdDocument, ParseVcdError> {
        // Tokenize the whole document, keeping line numbers.
        let mut tokens: Vec<(usize, &str)> = Vec::new();
        for (lineno, line) in self.lines.by_ref() {
            for tok in line.split_whitespace() {
                tokens.push((lineno + 1, tok));
            }
        }
        let mut i = 0usize;
        while i < tokens.len() {
            let (line, tok) = tokens[i];
            if self.in_definitions {
                i = self.definition_token(&tokens, i)?;
                continue;
            }
            match tok.chars().next() {
                Some('#') => {
                    let t: u64 = tok[1..]
                        .parse()
                        .map_err(|_| ParseVcdError::new(line, format!("bad timestamp `{tok}`")))?;
                    if t < self.time {
                        return Err(ParseVcdError::new(line, "timestamp moved backwards"));
                    }
                    self.time = t;
                    self.end_time = self.end_time.max(t);
                    i += 1;
                }
                Some('$') => {
                    // $dumpvars/$dumpall/$dumpon/$dumpoff/$end/$comment …
                    if tok == "$comment" {
                        i = skip_until_end(&tokens, i + 1, line)?;
                    } else {
                        i += 1;
                    }
                }
                Some('b') | Some('B') => {
                    let value = VcdValue::from_binary_str(&tok[1..]).ok_or_else(|| {
                        ParseVcdError::new(line, format!("bad vector value `{tok}`"))
                    })?;
                    let (_, code) = *tokens
                        .get(i + 1)
                        .ok_or_else(|| ParseVcdError::new(line, "vector change missing id code"))?;
                    self.record_change(line, code, value)?;
                    i += 2;
                }
                Some('r') | Some('R') => {
                    return Err(ParseVcdError::new(line, "real values are not supported"));
                }
                Some(c) if Scalar::from_char(c).is_some() => {
                    let scalar = Scalar::from_char(c).expect("checked");
                    let code = &tok[c.len_utf8()..];
                    if code.is_empty() {
                        return Err(ParseVcdError::new(line, "scalar change missing id code"));
                    }
                    self.record_change(line, code, VcdValue::scalar(scalar))?;
                    i += 1;
                }
                _ => {
                    return Err(ParseVcdError::new(
                        line,
                        format!("unexpected token `{tok}`"),
                    ));
                }
            }
        }
        Ok(VcdDocument {
            timescale: self.timescale,
            vars: self.vars,
            by_path: self.by_path,
            changes: self.changes,
            end_time: self.end_time,
        })
    }

    fn record_change(
        &mut self,
        line: usize,
        code: &str,
        value: VcdValue,
    ) -> Result<(), ParseVcdError> {
        let id = self
            .by_code
            .get(code)
            .copied()
            .ok_or_else(|| ParseVcdError::new(line, format!("unknown id code `{code}`")))?;
        self.changes[id.index()].push((self.time, value));
        Ok(())
    }

    fn definition_token(
        &mut self,
        tokens: &[(usize, &str)],
        i: usize,
    ) -> Result<usize, ParseVcdError> {
        let (line, tok) = tokens[i];
        match tok {
            "$date" | "$version" | "$comment" => skip_until_end(tokens, i + 1, line),
            "$timescale" => {
                let mut parts = Vec::new();
                let mut j = i + 1;
                while j < tokens.len() && tokens[j].1 != "$end" {
                    parts.push(tokens[j].1);
                    j += 1;
                }
                if j == tokens.len() {
                    return Err(ParseVcdError::new(line, "$timescale missing $end"));
                }
                self.timescale = Some(parts.join(" "));
                Ok(j + 1)
            }
            "$scope" => {
                // $scope <type> <name> $end
                let name = tokens
                    .get(i + 2)
                    .ok_or_else(|| ParseVcdError::new(line, "$scope missing name"))?
                    .1;
                expect_end(tokens, i + 3, line)?;
                self.scopes.push(name.to_owned());
                Ok(i + 4)
            }
            "$upscope" => {
                if self.scopes.pop().is_none() {
                    return Err(ParseVcdError::new(line, "$upscope without open scope"));
                }
                expect_end(tokens, i + 1, line)?;
                Ok(i + 2)
            }
            "$var" => {
                // $var <type> <width> <code> <name> [index] $end
                let width_tok = tokens
                    .get(i + 2)
                    .ok_or_else(|| ParseVcdError::new(line, "$var missing width"))?
                    .1;
                let width: usize = width_tok.parse().map_err(|_| {
                    ParseVcdError::new(line, format!("bad var width `{width_tok}`"))
                })?;
                let code = tokens
                    .get(i + 3)
                    .ok_or_else(|| ParseVcdError::new(line, "$var missing id code"))?
                    .1;
                let name = tokens
                    .get(i + 4)
                    .ok_or_else(|| ParseVcdError::new(line, "$var missing name"))?
                    .1;
                let mut j = i + 5;
                while j < tokens.len() && tokens[j].1 != "$end" {
                    j += 1; // optional [msb:lsb] index tokens
                }
                if j == tokens.len() {
                    return Err(ParseVcdError::new(line, "$var missing $end"));
                }
                let id = VarId(self.vars.len() as u32);
                let mut path = self.scopes.join(".");
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(name);
                self.vars.push(VarInfo {
                    path: path.clone(),
                    width: width.max(1),
                    code: code.to_owned(),
                });
                self.by_path.insert(path, id);
                self.by_code.insert(code.to_owned(), id);
                self.changes.push(Vec::new());
                Ok(j + 1)
            }
            "$enddefinitions" => {
                expect_end(tokens, i + 1, line)?;
                self.in_definitions = false;
                Ok(i + 2)
            }
            other => Err(ParseVcdError::new(
                line,
                format!("unexpected token `{other}` in definitions"),
            )),
        }
    }
}

fn skip_until_end(
    tokens: &[(usize, &str)],
    mut i: usize,
    line: usize,
) -> Result<usize, ParseVcdError> {
    while i < tokens.len() {
        if tokens[i].1 == "$end" {
            return Ok(i + 1);
        }
        i += 1;
    }
    Err(ParseVcdError::new(line, "directive missing $end"))
}

fn expect_end(tokens: &[(usize, &str)], i: usize, line: usize) -> Result<(), ParseVcdError> {
    match tokens.get(i) {
        Some((_, "$end")) => Ok(()),
        _ => Err(ParseVcdError::new(line, "expected $end")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::VcdWriter;
    use crate::Scalar;

    const SAMPLE: &str = "\
$date today $end
$version test $end
$timescale 1 ns $end
$scope module tb $end
$var wire 1 ! clk $end
$scope module dut $end
$var wire 8 \" data [7:0] $end
$upscope $end
$upscope $end
$enddefinitions $end
$dumpvars
x!
bxxxxxxxx \"
$end
#0
0!
b0 \"
#5
1!
b10100101 \"
#10
0!
";

    #[test]
    fn parses_header_and_paths() {
        let doc = VcdDocument::parse(SAMPLE).unwrap();
        assert_eq!(doc.timescale(), Some("1 ns"));
        assert_eq!(doc.vars().len(), 2);
        assert!(doc.var_by_name("tb.clk").is_some());
        let data = doc.var_by_name("tb.dut.data").unwrap();
        assert_eq!(doc.var(data).width, 8);
        assert_eq!(doc.end_time(), 10);
    }

    #[test]
    fn value_at_follows_changes() {
        let doc = VcdDocument::parse(SAMPLE).unwrap();
        let clk = doc.var_by_name("tb.clk").unwrap();
        let data = doc.var_by_name("tb.dut.data").unwrap();
        assert_eq!(doc.value_at(clk, 0).as_u64(), Some(0));
        assert_eq!(doc.value_at(clk, 5).as_u64(), Some(1));
        assert_eq!(doc.value_at(clk, 9).as_u64(), Some(1));
        assert_eq!(doc.value_at(clk, 10).as_u64(), Some(0));
        assert_eq!(doc.value_at(data, 7).as_u64(), Some(0xA5));
    }

    #[test]
    fn sample_series_walks_grid() {
        let doc = VcdDocument::parse(SAMPLE).unwrap();
        let clk = doc.var_by_name("tb.clk").unwrap();
        let series = doc.sample_series(clk, 0, 5, 3);
        let vals: Vec<_> = series.iter().map(|v| v.as_u64()).collect();
        assert_eq!(vals, [Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn cursor_matches_value_at_on_a_monotone_grid() {
        let doc = VcdDocument::parse(SAMPLE).unwrap();
        for name in ["tb.clk", "tb.dut.data"] {
            let id = doc.var_by_name(name).unwrap();
            let mut cursor = doc.cursor(id);
            for t in 0..=12u64 {
                assert_eq!(
                    *cursor.advance_to(t),
                    doc.value_at(id, t),
                    "{name} at t={t}"
                );
            }
        }
    }

    #[test]
    fn sample_series_into_reuses_the_buffer() {
        let doc = VcdDocument::parse(SAMPLE).unwrap();
        let clk = doc.var_by_name("tb.clk").unwrap();
        let mut buf = vec![VcdValue::unknown(1); 17];
        doc.sample_series_into(clk, 0, 5, 3, &mut buf);
        assert_eq!(buf.len(), 3);
        let vals: Vec<_> = buf.iter().map(|v| v.as_u64()).collect();
        assert_eq!(vals, [Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn unknown_before_first_change() {
        let text = "$timescale 1ns $end\n$var wire 4 ! v $end\n$enddefinitions $end\n#5\nb1010 !\n";
        let doc = VcdDocument::parse(text).unwrap();
        let v = doc.var_by_name("v").unwrap();
        assert!(doc.value_at(v, 0).has_unknown());
        assert_eq!(doc.value_at(v, 5).as_u64(), Some(0b1010));
    }

    #[test]
    fn rejects_unknown_code_and_backwards_time() {
        let text = "$enddefinitions $end\n#0\n1?\n";
        let err = VcdDocument::parse(text).unwrap_err();
        assert!(err.message.contains("unknown id code"));

        let text = "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n1!\n#3\n0!\n";
        let err = VcdDocument::parse(text).unwrap_err();
        assert!(err.message.contains("backwards"));
    }

    #[test]
    fn rejects_real_values() {
        let text = "$var real 64 ! r $end\n$enddefinitions $end\n#0\nr3.14 !\n";
        let err = VcdDocument::parse(text).unwrap_err();
        assert!(err.message.contains("real"));
    }

    #[test]
    fn writer_output_round_trips() {
        let mut buf = Vec::new();
        let mut w = VcdWriter::new(&mut buf, "1ns");
        w.push_scope("top");
        let a = w.add_var("a", 1);
        let d = w.add_var("d", 12);
        w.pop_scope();
        w.begin().unwrap();
        for t in 0..20u64 {
            w.change_scalar(t, a, Scalar::from_bool(t % 2 == 0))
                .unwrap();
            w.change_vector(t, d, 12, t * 100).unwrap();
        }
        w.finish(20).unwrap();
        let doc = VcdDocument::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let a2 = doc.var_by_name("top.a").unwrap();
        let d2 = doc.var_by_name("top.d").unwrap();
        for t in 0..20u64 {
            assert_eq!(doc.value_at(a2, t).as_u64(), Some((t % 2 == 0) as u64));
            assert_eq!(doc.value_at(d2, t).as_u64(), Some((t * 100) & 0xFFF));
        }
        assert_eq!(doc.end_time(), 20);
    }
}
