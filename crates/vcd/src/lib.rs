//! Value Change Dump (VCD) writing and parsing.
//!
//! The paper's regression tool dumps a VCD file per test run "so that it can
//! be used later for bus accurate comparison" by the STBus Analyzer. This
//! crate provides both directions: [`VcdWriter`] emits standard VCD from the
//! testbench's per-cycle port samples, and [`VcdDocument`] parses a dump
//! back so the analyzer (`stba`) can align two waveforms cycle by cycle.
//!
//! # Example
//!
//! ```
//! use stbus_vcd::{VcdWriter, VcdDocument, Scalar};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut out = Vec::new();
//! let mut w = VcdWriter::new(&mut out, "1ns");
//! w.push_scope("top");
//! let clk = w.add_var("clk", 1);
//! let bus = w.add_var("bus", 8);
//! w.pop_scope();
//! w.begin()?;
//! w.change_scalar(0, clk, Scalar::V0)?;
//! w.change_vector(0, bus, 8, 0x00)?;
//! w.change_scalar(5, clk, Scalar::V1)?;
//! w.change_vector(5, bus, 8, 0xA5)?;
//! w.finish(10)?;
//!
//! let doc = VcdDocument::parse(std::str::from_utf8(&out)?)?;
//! let bus_var = doc.var_by_name("top.bus").expect("declared");
//! assert_eq!(doc.value_at(bus_var, 7).as_u64(), Some(0xA5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod document;
mod error;
mod value;
mod writer;

pub use document::{VarCursor, VarId, VarInfo, VcdDocument};
pub use error::ParseVcdError;
pub use value::{Scalar, VcdValue};
pub use writer::VcdWriter;
