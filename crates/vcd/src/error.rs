//! VCD parse errors.

use std::fmt;

/// An error encountered while parsing a VCD document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseVcdError {
    /// 1-based line number of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseVcdError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseVcdError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseVcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcd parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseVcdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseVcdError::new(12, "bad token");
        assert_eq!(e.to_string(), "vcd parse error at line 12: bad token");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ParseVcdError>();
    }
}
