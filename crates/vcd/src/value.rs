//! VCD value representations.

use std::fmt;

/// A single VCD scalar value character.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Scalar {
    /// `0`
    #[default]
    V0,
    /// `1`
    V1,
    /// `x`
    X,
    /// `z`
    Z,
}

impl Scalar {
    /// The VCD character.
    pub const fn to_char(self) -> char {
        match self {
            Scalar::V0 => '0',
            Scalar::V1 => '1',
            Scalar::X => 'x',
            Scalar::Z => 'z',
        }
    }

    /// Parses one VCD value character (case-insensitive for x/z).
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(Scalar::V0),
            '1' => Some(Scalar::V1),
            'x' | 'X' => Some(Scalar::X),
            'z' | 'Z' => Some(Scalar::Z),
            _ => None,
        }
    }

    /// Converts a bool.
    pub const fn from_bool(b: bool) -> Self {
        if b {
            Scalar::V1
        } else {
            Scalar::V0
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A (possibly vector) value attached to a change record.
///
/// Bit 0 of `bits` is the least-significant bit.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct VcdValue {
    bits: Vec<Scalar>,
}

impl VcdValue {
    /// A scalar value.
    pub fn scalar(s: Scalar) -> Self {
        VcdValue { bits: vec![s] }
    }

    /// All-`x` of the given width (the VCD initial state).
    pub fn unknown(width: usize) -> Self {
        VcdValue {
            bits: vec![Scalar::X; width.max(1)],
        }
    }

    /// From the low `width` bits of an integer.
    pub fn from_u64(v: u64, width: usize) -> Self {
        let width = width.max(1);
        VcdValue {
            bits: (0..width)
                .map(|i| Scalar::from_bool(i < 64 && (v >> i) & 1 == 1))
                .collect(),
        }
    }

    /// Parses the MSB-first binary literal body (after `b`).
    pub fn from_binary_str(s: &str) -> Option<Self> {
        let mut bits: Vec<Scalar> = s.chars().map(Scalar::from_char).collect::<Option<_>>()?;
        if bits.is_empty() {
            return None;
        }
        bits.reverse(); // stored LSB-first
        Some(VcdValue { bits })
    }

    /// The number of bits stored.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Bit `i`, LSB first; out-of-range bits read as `V0` (VCD
    /// left-extension rule for `0`/`1` values).
    pub fn bit(&self, i: usize) -> Scalar {
        self.bits.get(i).copied().unwrap_or_else(|| {
            // VCD extends with the MSB for x/z, with 0 otherwise.
            match self.bits.last() {
                Some(Scalar::X) => Scalar::X,
                Some(Scalar::Z) => Scalar::Z,
                _ => Scalar::V0,
            }
        })
    }

    /// Interprets as an integer when every bit is 0/1 and width ≤ 64.
    pub fn as_u64(&self) -> Option<u64> {
        let mut out = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b {
                Scalar::V1 if i < 64 => out |= 1 << i,
                Scalar::V0 | Scalar::V1 => {}
                Scalar::X | Scalar::Z => return None,
            }
        }
        Some(out)
    }

    /// True if any bit is `x` or `z`.
    pub fn has_unknown(&self) -> bool {
        self.bits.iter().any(|b| matches!(b, Scalar::X | Scalar::Z))
    }

    /// MSB-first binary rendering (no `b` prefix).
    pub fn to_binary_string(&self) -> String {
        self.bits.iter().rev().map(|b| b.to_char()).collect()
    }

    /// Compares two values bit-by-bit at a given width, treating missing
    /// high bits per the VCD extension rule. `x`/`z` compare equal only to
    /// themselves.
    pub fn equals_at_width(&self, other: &VcdValue, width: usize) -> bool {
        (0..width).all(|i| self.bit(i) == other.bit(i))
    }
}

impl fmt::Display for VcdValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.to_binary_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        for s in [Scalar::V0, Scalar::V1, Scalar::X, Scalar::Z] {
            assert_eq!(Scalar::from_char(s.to_char()), Some(s));
        }
        assert_eq!(Scalar::from_char('q'), None);
        assert_eq!(Scalar::from_char('X'), Some(Scalar::X));
    }

    #[test]
    fn value_from_u64_and_back() {
        let v = VcdValue::from_u64(0xDE, 8);
        assert_eq!(v.as_u64(), Some(0xDE));
        assert_eq!(v.to_binary_string(), "11011110");
    }

    #[test]
    fn value_width_masks() {
        let v = VcdValue::from_u64(0xFF, 4);
        assert_eq!(v.as_u64(), Some(0xF));
        assert_eq!(v.width(), 4);
    }

    #[test]
    fn binary_parse_msb_first() {
        let v = VcdValue::from_binary_str("10x").unwrap();
        assert_eq!(v.bit(0), Scalar::X);
        assert_eq!(v.bit(1), Scalar::V0);
        assert_eq!(v.bit(2), Scalar::V1);
        assert!(v.has_unknown());
        assert_eq!(v.as_u64(), None);
        assert!(VcdValue::from_binary_str("").is_none());
        assert!(VcdValue::from_binary_str("12").is_none());
    }

    #[test]
    fn extension_rule() {
        // A short "1" literal extends high bits with 0.
        let v = VcdValue::from_binary_str("1").unwrap();
        assert_eq!(v.bit(0), Scalar::V1);
        assert_eq!(v.bit(5), Scalar::V0);
        // A short "x" literal extends with x.
        let x = VcdValue::from_binary_str("x").unwrap();
        assert_eq!(x.bit(7), Scalar::X);
    }

    #[test]
    fn equals_at_width_uses_extension() {
        let a = VcdValue::from_binary_str("1").unwrap();
        let b = VcdValue::from_u64(1, 8);
        assert!(a.equals_at_width(&b, 8));
        let c = VcdValue::from_u64(3, 8);
        assert!(!a.equals_at_width(&c, 8));
        assert!(a.equals_at_width(&c, 1));
    }

    #[test]
    fn unknown_constructor() {
        let u = VcdValue::unknown(4);
        assert!(u.has_unknown());
        assert_eq!(u.width(), 4);
        assert_eq!(u.to_binary_string(), "xxxx");
    }
}
