//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in abstract ticks.
///
/// The kernel does not impose a physical unit; the convention used by the
/// STBus models is one tick = one nanosecond with a 10-tick clock period.
///
/// ```
/// use sim_kernel::SimTime;
/// let t = SimTime::ZERO + SimTime::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero, the instant the simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    #[must_use]
    pub const fn saturating_add(self, ticks: u64) -> Self {
        SimTime(self.0.saturating_add(ticks))
    }
}

impl Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_and_sub_round_trip() {
        let a = SimTime::from_ticks(100);
        let b = a + 23;
        assert_eq!(b.ticks(), 123);
        assert_eq!((b - a).ticks(), 23);
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::MAX > SimTime::from_ticks(u64::MAX - 1));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(10), SimTime::MAX);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "42t");
    }
}
