//! An event-driven digital-logic simulation kernel.
//!
//! This crate is the substrate that plays the role NCSim plays in the paper
//! *"Common Reusable Verification Environment for BCA and RTL Models"*
//! (Falconeri et al., DATE 2004): a simulator with typed signals,
//! delta-cycle semantics, combinational processes sensitive to signal
//! changes, clocked processes sensitive to edges, waveform tracing and
//! process-activity ("code") coverage.
//!
//! The RTL view of the STBus node (`stbus-rtl`) is written as processes on
//! this kernel; the BCA view deliberately bypasses it, which reproduces the
//! BCA-vs-RTL simulation-speed gap the paper's introduction motivates.
//!
//! # Example
//!
//! A two-process divider-by-two driven by a clock:
//!
//! ```
//! use sim_kernel::{Simulator, Edge};
//!
//! # fn main() -> Result<(), sim_kernel::SimError> {
//! let mut sim = Simulator::new();
//! let clk = sim.add_signal("clk", false);
//! let q = sim.add_signal("q", false);
//!
//! sim.add_clocked_process("div2", clk, Edge::Rising, move |ctx| {
//!     let cur = ctx.get(q);
//!     ctx.set(q, !cur);
//! });
//!
//! let clock = sim.add_clock(clk, 10);
//! sim.run_for(100)?;
//! assert_eq!(sim.value(q), true); // 5 rising edges seen, q toggled 5 times
//! # let _ = clock;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod compiled;
mod coverage;
mod error;
mod logic;
mod process;
mod scheduler;
mod signal;
mod stats;
mod time;
mod trace;

pub use clock::ClockId;
pub use compiled::{CompiledCtx, CompiledSim, CompiledStats, SimBackend, WordValue};
pub use coverage::{ActivityCoverage, BranchActivity, BranchId, ProcessActivity};
pub use error::SimError;
pub use logic::{Bits, Logic, LogicVec};
pub use process::{Edge, ProcCtx, ProcessId};
pub use scheduler::Simulator;
pub use signal::{Signal, SignalId, SignalValue};
pub use stats::KernelStats;
pub use time::SimTime;
pub use trace::{ChangeRecord, TraceSink, VecTrace};
