//! Kernel work counters and their export to a telemetry
//! [`MetricsRegistry`].
//!
//! The simulator always maintains a cheap [`KernelStats`] tally (plain
//! integer fields, no atomics). When a registry is attached with
//! [`Simulator::attach_metrics`] the same quantities are additionally
//! published as shared metrics under the `kernel.*` namespace, so a
//! testbench or regression campaign can snapshot them without holding a
//! reference to the simulator.
//!
//! [`Simulator::attach_metrics`]: crate::Simulator::attach_metrics
//! [`MetricsRegistry`]: telemetry::MetricsRegistry

use telemetry::{Counter, Histogram, MetricsRegistry};

/// Cumulative work counters of one [`Simulator`](crate::Simulator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Delta cycles executed across all settle loops.
    pub delta_cycles: u64,
    /// Process bodies run (activations).
    pub process_activations: u64,
    /// Signal commits that actually changed a value.
    pub signal_commits: u64,
    /// Calls to [`Simulator::settle`](crate::Simulator::settle)
    /// (including those implied by the run methods).
    pub settle_calls: u64,
    /// Timed events popped from the event queue (clock toggles and
    /// delayed writes).
    pub timed_events: u64,
    /// Distinct simulation-time steps advanced by the run methods.
    pub time_steps: u64,
    /// Worst-case delta cycles needed by a single settle loop.
    pub max_deltas_per_settle: u32,
}

/// Live handles into an attached registry; kept `None`-able on the
/// simulator so the un-instrumented path stays free of atomic traffic.
pub(crate) struct KernelMetrics {
    pub(crate) delta_cycles: Counter,
    pub(crate) process_activations: Counter,
    pub(crate) signal_commits: Counter,
    pub(crate) settle_calls: Counter,
    pub(crate) timed_events: Counter,
    pub(crate) time_steps: Counter,
    pub(crate) deltas_per_settle: Histogram,
}

/// Bucket bounds for the `kernel.deltas_per_settle` histogram: most
/// settle loops converge within a handful of deltas, so powers of two
/// up to the default delta limit's low range give useful resolution.
pub(crate) const DELTAS_PER_SETTLE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

impl KernelMetrics {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        KernelMetrics {
            delta_cycles: registry.counter("kernel.delta_cycles"),
            process_activations: registry.counter("kernel.process_activations"),
            signal_commits: registry.counter("kernel.signal_commits"),
            settle_calls: registry.counter("kernel.settle_calls"),
            timed_events: registry.counter("kernel.timed_events"),
            time_steps: registry.counter("kernel.time_steps"),
            deltas_per_settle: registry
                .histogram("kernel.deltas_per_settle", DELTAS_PER_SETTLE_BOUNDS),
        }
    }
}
