//! The simulator: signal arena, process scheduling, delta cycles and the
//! timed event queue.

use crate::clock::{ClockId, ClockSpec};
use crate::coverage::{ActivityCoverage, BranchActivity, BranchId, ProcessActivity};
use crate::error::SimError;
use crate::process::{DelayedWrite, Edge, ProcCtx, ProcessId, ProcessSlot};
use crate::signal::{Signal, SignalId, SignalSlot, SignalValue, TypedStore};
use crate::stats::{KernelMetrics, KernelStats};
use crate::time::SimTime;
use crate::trace::TraceSink;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const DEFAULT_DELTA_LIMIT: u32 = 1000;

trait AnyTraceSink: TraceSink {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: TraceSink + Any> AnyTraceSink for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

enum EventAction {
    ClockToggle(ClockId),
    Write(SignalId, Box<dyn FnOnce(&mut SignalSlot)>),
}

struct EventEntry {
    time: SimTime,
    seq: u64,
    action: EventAction,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// An event-driven simulator with delta-cycle semantics.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Simulator {
    signals: Vec<SignalSlot>,
    processes: Vec<ProcessSlot>,
    branch_names: Vec<String>,
    branch_hits: Vec<u64>,
    time: SimTime,
    events: BinaryHeap<Reverse<EventEntry>>,
    event_seq: u64,
    clocks: Vec<ClockSpec>,
    trace: Option<Box<dyn AnyTraceSink>>,
    delta_limit: u32,
    /// Processes queued to run in the next delta.
    triggered: Vec<ProcessId>,
    trigger_marks: Vec<bool>,
    /// Signals with uncommitted pending values.
    written: Vec<SignalId>,
    initialized: bool,
    total_deltas: u64,
    stats: KernelStats,
    metrics: Option<KernelMetrics>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            signals: Vec::new(),
            processes: Vec::new(),
            branch_names: Vec::new(),
            branch_hits: Vec::new(),
            time: SimTime::ZERO,
            events: BinaryHeap::new(),
            event_seq: 0,
            clocks: Vec::new(),
            trace: None,
            delta_limit: DEFAULT_DELTA_LIMIT,
            triggered: Vec::new(),
            trigger_marks: Vec::new(),
            written: Vec::new(),
            initialized: false,
            total_deltas: 0,
            stats: KernelStats::default(),
            metrics: None,
        }
    }

    /// Overrides the delta-cycle convergence limit (default 1000).
    pub fn set_delta_limit(&mut self, limit: u32) {
        self.delta_limit = limit.max(1);
    }

    /// Registers a signal with an initial value; the name appears in traces.
    pub fn add_signal<T: SignalValue>(&mut self, name: &str, init: T) -> Signal<T> {
        let id = SignalId(self.signals.len() as u32);
        let width = init.width();
        self.signals.push(SignalSlot {
            name: name.to_owned(),
            width,
            store: Box::new(TypedStore::new(init)),
            sensitive: Vec::new(),
            sensitive_rising: Vec::new(),
            sensitive_falling: Vec::new(),
            traced: false,
        });
        Signal::new(id)
    }

    /// Registers a combinational process sensitive to any change of the
    /// given signals. The process also runs once at initialization.
    pub fn add_comb_process<F>(
        &mut self,
        name: &str,
        sensitivity: &[SignalId],
        body: F,
    ) -> ProcessId
    where
        F: FnMut(&mut ProcCtx<'_>) + 'static,
    {
        let id = self.push_process(name, body);
        for sig in sensitivity {
            self.signals[sig.index()].sensitive.push(id);
        }
        id
    }

    /// Registers a process sensitive to an edge of a `bool` clock signal.
    pub fn add_clocked_process<F>(
        &mut self,
        name: &str,
        clk: Signal<bool>,
        edge: Edge,
        body: F,
    ) -> ProcessId
    where
        F: FnMut(&mut ProcCtx<'_>) + 'static,
    {
        let id = self.push_process(name, body);
        self.attach_edge(clk.id(), edge, id);
        id
    }

    /// Registers edge sensitivity on an untyped signal handle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EdgeOnNonBool`] if `Edge::Rising`/`Edge::Falling`
    /// is requested on a signal whose value type is not `bool`.
    pub fn add_edge_process<F>(
        &mut self,
        name: &str,
        signal: SignalId,
        edge: Edge,
        body: F,
    ) -> Result<ProcessId, SimError>
    where
        F: FnMut(&mut ProcCtx<'_>) + 'static,
    {
        if !matches!(edge, Edge::Any) && self.signals[signal.index()].store.bool_edge().is_none() {
            return Err(SimError::EdgeOnNonBool {
                signal: self.signals[signal.index()].name.clone(),
            });
        }
        let id = self.push_process(name, body);
        self.attach_edge(signal, edge, id);
        Ok(id)
    }

    fn push_process<F>(&mut self, name: &str, body: F) -> ProcessId
    where
        F: FnMut(&mut ProcCtx<'_>) + 'static,
    {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcessSlot {
            name: name.to_owned(),
            body: Some(Box::new(body)),
            runs: 0,
            run_at_init: true,
        });
        self.trigger_marks.push(false);
        id
    }

    fn attach_edge(&mut self, signal: SignalId, edge: Edge, id: ProcessId) {
        if !matches!(edge, Edge::Any) {
            self.processes[id.index()].run_at_init = false;
        }
        let slot = &mut self.signals[signal.index()];
        match edge {
            Edge::Rising => slot.sensitive_rising.push(id),
            Edge::Falling => slot.sensitive_falling.push(id),
            Edge::Any => slot.sensitive.push(id),
        }
    }

    /// Registers a named coverage branch point (see [`ProcCtx::cov`]).
    pub fn add_branch(&mut self, name: &str) -> BranchId {
        let id = BranchId(self.branch_names.len() as u32);
        self.branch_names.push(name.to_owned());
        self.branch_hits.push(0);
        id
    }

    /// Attaches a free-running clock toggling `signal` every `half_period`
    /// ticks, starting at the current time plus one half-period.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroClockPeriod`] when `half_period == 0`.
    pub fn add_clock(
        &mut self,
        signal: Signal<bool>,
        half_period: u64,
    ) -> Result<ClockId, SimError> {
        if half_period == 0 {
            return Err(SimError::ZeroClockPeriod);
        }
        let id = ClockId(self.clocks.len() as u32);
        self.clocks.push(ClockSpec {
            signal: signal.id(),
            half_period,
            enabled: true,
        });
        let at = self.time + half_period;
        self.push_event(at, EventAction::ClockToggle(id));
        Ok(id)
    }

    /// Stops a clock; pending toggles are ignored.
    pub fn stop_clock(&mut self, clock: ClockId) {
        self.clocks[clock.index()].enabled = false;
    }

    fn push_event(&mut self, time: SimTime, action: EventAction) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(Reverse(EventEntry { time, seq, action }));
    }

    /// Drives a pending value onto a signal from outside any process.
    ///
    /// The value commits on the next [`Simulator::settle`] (or any run call).
    ///
    /// # Panics
    ///
    /// Panics on a handle/value type mismatch.
    pub fn drive<T: SignalValue>(&mut self, sig: Signal<T>, value: T) {
        let slot = &mut self.signals[sig.id().index()];
        slot.store
            .as_any_mut()
            .downcast_mut::<TypedStore<T>>()
            .expect("signal driven with wrong type")
            .pending = Some(value);
        self.written.push(sig.id());
    }

    /// Reads the current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics on a handle/value type mismatch.
    pub fn value<T: SignalValue>(&self, sig: Signal<T>) -> T {
        self.signals[sig.id().index()]
            .store
            .as_any()
            .downcast_ref::<TypedStore<T>>()
            .expect("signal read with wrong type")
            .current
            .clone()
    }

    /// The registered name of a signal.
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.signals[id.index()].name
    }

    /// The trace width of a signal in bits.
    pub fn signal_width(&self, id: SignalId) -> usize {
        self.signals[id.index()].width
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total delta cycles executed so far (a work metric for benches).
    pub fn total_deltas(&self) -> u64 {
        self.total_deltas
    }

    /// A snapshot of the kernel's cumulative work counters.
    pub fn kernel_stats(&self) -> KernelStats {
        KernelStats {
            delta_cycles: self.total_deltas,
            ..self.stats
        }
    }

    /// Publishes this simulator's work counters into `registry` under the
    /// `kernel.*` metric names (`kernel.delta_cycles`,
    /// `kernel.process_activations`, `kernel.signal_commits`,
    /// `kernel.settle_calls`, `kernel.timed_events`, `kernel.time_steps`
    /// and the `kernel.deltas_per_settle` histogram).
    ///
    /// Counters accumulate from the moment of attachment; several
    /// simulators may share one registry, in which case their work adds
    /// up — exactly what a regression campaign wants.
    pub fn attach_metrics(&mut self, registry: &telemetry::MetricsRegistry) {
        self.metrics = Some(KernelMetrics::new(registry));
    }

    /// Installs a trace sink; only signals marked with
    /// [`Simulator::trace_signal`] (or all, after
    /// [`Simulator::trace_all`]) are reported.
    pub fn set_trace<S: TraceSink + Any>(&mut self, sink: S) {
        self.trace = Some(Box::new(sink));
    }

    /// Returns the installed trace sink, if it has type `S`.
    pub fn trace<S: TraceSink + Any>(&self) -> Option<&S> {
        self.trace.as_ref()?.as_any().downcast_ref::<S>()
    }

    /// Mutable access to the installed trace sink.
    pub fn trace_mut<S: TraceSink + Any>(&mut self) -> Option<&mut S> {
        self.trace.as_mut()?.as_any_mut().downcast_mut::<S>()
    }

    /// Marks one signal for tracing.
    pub fn trace_signal(&mut self, id: SignalId) {
        self.signals[id.index()].traced = true;
    }

    /// Marks every signal for tracing.
    pub fn trace_all(&mut self) {
        for s in &mut self.signals {
            s.traced = true;
        }
    }

    /// Runs delta cycles at the current time until the design is stable.
    ///
    /// On the first call all processes execute once (HDL-style
    /// initialization).
    ///
    /// # Errors
    ///
    /// [`SimError::DeltaOverflow`] if convergence is not reached.
    pub fn settle(&mut self) -> Result<(), SimError> {
        if !self.initialized {
            self.initialized = true;
            for i in 0..self.processes.len() {
                if self.processes[i].run_at_init {
                    self.enqueue_process(ProcessId(i as u32));
                }
            }
        }
        self.commit_written();
        let mut deltas = 0u32;
        let mut overflow = false;
        while !self.triggered.is_empty() {
            deltas += 1;
            self.total_deltas += 1;
            if deltas > self.delta_limit {
                overflow = true;
                break;
            }
            self.run_triggered();
            self.commit_written();
        }
        self.stats.settle_calls += 1;
        self.stats.max_deltas_per_settle = self.stats.max_deltas_per_settle.max(deltas);
        if let Some(m) = &self.metrics {
            m.settle_calls.inc();
            m.delta_cycles.add(u64::from(deltas));
            m.deltas_per_settle.observe(u64::from(deltas));
        }
        if overflow {
            return Err(SimError::DeltaOverflow {
                time: self.time,
                limit: self.delta_limit,
            });
        }
        Ok(())
    }

    fn enqueue_process(&mut self, id: ProcessId) {
        if !self.trigger_marks[id.index()] {
            self.trigger_marks[id.index()] = true;
            self.triggered.push(id);
        }
    }

    fn run_triggered(&mut self) {
        let batch = std::mem::take(&mut self.triggered);
        for id in &batch {
            self.trigger_marks[id.index()] = false;
        }
        let mut delayed: Vec<DelayedWrite> = Vec::new();
        let mut activations = 0u64;
        for id in batch {
            let mut body = match self.processes[id.index()].body.take() {
                Some(b) => b,
                None => continue,
            };
            self.processes[id.index()].runs += 1;
            activations += 1;
            {
                let mut ctx = ProcCtx {
                    signals: &mut self.signals,
                    written: &mut self.written,
                    delayed: &mut delayed,
                    branch_hits: &mut self.branch_hits,
                    time: self.time,
                    proc_id: id,
                };
                body(&mut ctx);
            }
            self.processes[id.index()].body = Some(body);
        }
        self.stats.process_activations += activations;
        if let Some(m) = &self.metrics {
            m.process_activations.add(activations);
        }
        for (delay, id, apply) in delayed {
            let at = self.time + delay;
            self.push_event(at, EventAction::Write(id, apply));
        }
    }

    fn commit_written(&mut self) {
        let written = std::mem::take(&mut self.written);
        let mut to_trigger: Vec<ProcessId> = Vec::new();
        let mut commits = 0u64;
        for id in written {
            let slot = &mut self.signals[id.index()];
            let had_pending_edge = slot.store.bool_edge();
            if !slot.store.commit() {
                continue;
            }
            commits += 1;
            to_trigger.extend_from_slice(&slot.sensitive);
            if let Some((_, now_val)) = slot.store.bool_edge() {
                // commit() updated previous/current; a change on a bool is
                // always exactly one edge.
                if now_val {
                    to_trigger.extend_from_slice(&slot.sensitive_rising);
                } else {
                    to_trigger.extend_from_slice(&slot.sensitive_falling);
                }
            }
            let _ = had_pending_edge;
            if slot.traced {
                if let Some(sink) = self.trace.as_mut() {
                    sink.on_change(self.time, id, &slot.name, &slot.store.bits());
                }
            }
        }
        self.stats.signal_commits += commits;
        if let Some(m) = &self.metrics {
            m.signal_commits.add(commits);
        }
        for p in to_trigger {
            self.enqueue_process(p);
        }
    }

    /// Advances simulated time to `target`, processing all timed events and
    /// the delta cycles they cause.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::DeltaOverflow`] from any time step.
    pub fn run_until(&mut self, target: SimTime) -> Result<(), SimError> {
        self.settle()?;
        loop {
            let next_time = match self.events.peek() {
                Some(Reverse(e)) if e.time <= target => e.time,
                _ => break,
            };
            self.time = next_time;
            self.stats.time_steps += 1;
            let mut popped = 0u64;
            while let Some(Reverse(e)) = self.events.peek() {
                if e.time != next_time {
                    break;
                }
                let Reverse(entry) = self.events.pop().expect("peeked");
                self.apply_event(entry.action);
                popped += 1;
            }
            self.stats.timed_events += popped;
            if let Some(m) = &self.metrics {
                m.time_steps.inc();
                m.timed_events.add(popped);
            }
            self.settle()?;
        }
        self.time = target;
        Ok(())
    }

    /// Advances simulated time by `ticks`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::DeltaOverflow`].
    pub fn run_for(&mut self, ticks: u64) -> Result<(), SimError> {
        self.run_until(self.time + ticks)
    }

    fn apply_event(&mut self, action: EventAction) {
        match action {
            EventAction::ClockToggle(id) => {
                let (sig, half, enabled) = {
                    let c = &self.clocks[id.index()];
                    (c.signal, c.half_period, c.enabled)
                };
                if !enabled {
                    return;
                }
                let slot = &mut self.signals[sig.index()];
                if let Some(store) = slot.store.as_any_mut().downcast_mut::<TypedStore<bool>>() {
                    store.pending = Some(!store.current);
                    self.written.push(sig);
                }
                let at = self.time + half;
                self.push_event(at, EventAction::ClockToggle(id));
            }
            EventAction::Write(id, apply) => {
                apply(&mut self.signals[id.index()]);
                self.written.push(id);
            }
        }
    }

    /// Extracts the structural-coverage report.
    pub fn activity_coverage(&self) -> ActivityCoverage {
        ActivityCoverage {
            processes: self
                .processes
                .iter()
                .map(|p| ProcessActivity {
                    name: p.name.clone(),
                    runs: p.runs,
                })
                .collect(),
            branches: self
                .branch_names
                .iter()
                .zip(&self.branch_hits)
                .map(|(name, hits)| BranchActivity {
                    name: name.clone(),
                    hits: *hits,
                })
                .collect(),
        }
    }

    /// Number of registered signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Iterates over every registered signal id, in registration order.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    #[test]
    fn drive_and_settle_commits() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 0u32);
        sim.drive(s, 42);
        sim.settle().unwrap();
        assert_eq!(sim.value(s), 42);
    }

    #[test]
    fn comb_process_follows_inputs() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", false);
        let b = sim.add_signal("b", false);
        let y = sim.add_signal("y", false);
        sim.add_comb_process("and_gate", &[a.id(), b.id()], move |ctx| {
            let v = ctx.get(a) && ctx.get(b);
            ctx.set(y, v);
        });
        sim.settle().unwrap();
        assert!(!sim.value(y));
        sim.drive(a, true);
        sim.drive(b, true);
        sim.settle().unwrap();
        assert!(sim.value(y));
        sim.drive(b, false);
        sim.settle().unwrap();
        assert!(!sim.value(y));
    }

    #[test]
    fn chained_comb_processes_converge() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 0u8);
        let b = sim.add_signal("b", 0u8);
        let c = sim.add_signal("c", 0u8);
        sim.add_comb_process("inc1", &[a.id()], move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v.wrapping_add(1));
        });
        sim.add_comb_process("inc2", &[b.id()], move |ctx| {
            let v = ctx.get(b);
            ctx.set(c, v.wrapping_add(1));
        });
        sim.drive(a, 10);
        sim.settle().unwrap();
        assert_eq!(sim.value(c), 12);
    }

    #[test]
    fn combinational_loop_reports_delta_overflow() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", false);
        let b = sim.add_signal("b", false);
        sim.add_comb_process("not1", &[a.id()], move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, !v);
        });
        sim.add_comb_process("not2", &[b.id()], move |ctx| {
            let v = ctx.get(b);
            ctx.set(a, !v);
        });
        sim.set_delta_limit(50);
        let err = sim.settle().unwrap_err();
        assert!(matches!(err, SimError::DeltaOverflow { limit: 50, .. }));
    }

    #[test]
    fn clocked_process_sees_rising_edges_only() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        let count = sim.add_signal("count", 0u32);
        sim.add_clocked_process("counter", clk, Edge::Rising, move |ctx| {
            let v = ctx.get(count);
            ctx.set(count, v + 1);
        });
        sim.add_clock(clk, 5).unwrap();
        sim.run_for(50).unwrap(); // edges at 5(r),10(f),15(r)... rising at 5,15,25,35,45
        assert_eq!(sim.value(count), 5);
    }

    #[test]
    fn falling_edge_sensitivity() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        let count = sim.add_signal("count", 0u32);
        sim.add_clocked_process("counter", clk, Edge::Falling, move |ctx| {
            let v = ctx.get(count);
            ctx.set(count, v + 1);
        });
        sim.add_clock(clk, 5).unwrap();
        sim.run_for(50).unwrap(); // falling at 10,20,30,40,50
        assert_eq!(sim.value(count), 5);
    }

    #[test]
    fn nonblocking_semantics_shift_register() {
        // Two registers clocked on the same edge exchange values without
        // racing, because writes commit after all bodies ran.
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        let q0 = sim.add_signal("q0", 1u8);
        let q1 = sim.add_signal("q1", 0u8);
        sim.add_clocked_process("r0", clk, Edge::Rising, move |ctx| {
            let v = ctx.get(q1);
            ctx.set(q0, v);
        });
        sim.add_clocked_process("r1", clk, Edge::Rising, move |ctx| {
            let v = ctx.get(q0);
            ctx.set(q1, v);
        });
        sim.add_clock(clk, 10).unwrap();
        sim.run_for(20).unwrap(); // one rising edge at t=10
        assert_eq!(sim.value(q0), 0);
        assert_eq!(sim.value(q1), 1);
    }

    #[test]
    fn set_after_schedules_timed_write() {
        let mut sim = Simulator::new();
        let trig = sim.add_signal("trig", false);
        let out = sim.add_signal("out", 0u8);
        sim.add_comb_process("delayer", &[trig.id()], move |ctx| {
            if ctx.get(trig) {
                ctx.set_after(out, 7u8, 30);
            }
        });
        sim.settle().unwrap();
        sim.drive(trig, true);
        sim.run_for(10).unwrap();
        assert_eq!(sim.value(out), 0);
        sim.run_for(25).unwrap();
        assert_eq!(sim.value(out), 7);
    }

    #[test]
    fn trace_records_only_marked_signals() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 0u8);
        let b = sim.add_signal("b", 0u8);
        sim.set_trace(VecTrace::default());
        sim.trace_signal(a.id());
        sim.drive(a, 1);
        sim.drive(b, 1);
        sim.settle().unwrap();
        let t: &VecTrace = sim.trace().unwrap();
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].name, "a");
    }

    #[test]
    fn redundant_write_does_not_retrigger() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", false);
        let runs = sim.add_signal("runs", 0u32);
        sim.add_comb_process("observer", &[a.id()], move |ctx| {
            let r = ctx.get(runs);
            ctx.set(runs, r + 1);
        });
        sim.settle().unwrap();
        let after_init = sim.value(runs);
        sim.drive(a, false); // same value as current
        sim.settle().unwrap();
        assert_eq!(sim.value(runs), after_init);
    }

    #[test]
    fn stop_clock_freezes_signal() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        let id = sim.add_clock(clk, 5).unwrap();
        sim.run_for(5).unwrap();
        assert!(sim.value(clk));
        sim.stop_clock(id);
        sim.run_for(50).unwrap();
        assert!(sim.value(clk));
    }

    #[test]
    fn zero_period_clock_rejected() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        assert_eq!(
            sim.add_clock(clk, 0).unwrap_err(),
            SimError::ZeroClockPeriod
        );
    }

    #[test]
    fn edge_process_on_non_bool_rejected() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("bus", 0u32);
        let err = sim
            .add_edge_process("p", s.id(), Edge::Rising, |_| {})
            .unwrap_err();
        assert!(matches!(err, SimError::EdgeOnNonBool { .. }));
        // Any-sensitivity is fine on non-bool.
        assert!(sim.add_edge_process("q", s.id(), Edge::Any, |_| {}).is_ok());
    }

    #[test]
    fn activity_coverage_counts_runs_and_branches() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", false);
        let taken = sim.add_branch("p/taken");
        let not_taken = sim.add_branch("p/not_taken");
        sim.add_comb_process("p", &[a.id()], move |ctx| {
            if ctx.get(a) {
                ctx.cov(taken);
            } else {
                ctx.cov(not_taken);
            }
        });
        sim.settle().unwrap();
        sim.drive(a, true);
        sim.settle().unwrap();
        let cov = sim.activity_coverage();
        assert_eq!(cov.branch_coverage(), 1.0);
        assert_eq!(cov.process_coverage(), 1.0);
        assert_eq!(cov.processes[0].runs, 2);
    }

    #[test]
    fn run_until_is_idempotent_at_target() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::from_ticks(100)).unwrap();
        assert_eq!(sim.now(), SimTime::from_ticks(100));
        sim.run_until(SimTime::from_ticks(100)).unwrap();
        assert_eq!(sim.now(), SimTime::from_ticks(100));
    }

    #[test]
    fn kernel_stats_and_metrics_count_work() {
        let registry = telemetry::MetricsRegistry::new();
        let mut sim = Simulator::new();
        sim.attach_metrics(&registry);
        let clk = sim.add_signal("clk", false);
        let q = sim.add_signal("q", 0u32);
        sim.add_clocked_process("cnt", clk, Edge::Rising, move |ctx| {
            let v = ctx.get(q);
            ctx.set(q, v + 1);
        });
        sim.add_clock(clk, 5).unwrap();
        sim.run_for(50).unwrap(); // 10 toggles, 5 rising edges

        let stats = sim.kernel_stats();
        assert_eq!(stats.delta_cycles, sim.total_deltas());
        assert_eq!(stats.process_activations, 5);
        // 10 clock commits + 5 counter commits.
        assert_eq!(stats.signal_commits, 15);
        assert_eq!(stats.timed_events, 10);
        assert_eq!(stats.time_steps, 10);
        assert!(stats.settle_calls >= 10);
        assert!(stats.max_deltas_per_settle >= 1);

        let snap = registry.snapshot();
        assert_eq!(snap.counters["kernel.delta_cycles"], stats.delta_cycles);
        assert_eq!(snap.counters["kernel.process_activations"], 5);
        assert_eq!(snap.counters["kernel.signal_commits"], 15);
        assert_eq!(snap.counters["kernel.timed_events"], 10);
        assert_eq!(snap.counters["kernel.time_steps"], 10);
        let hist = &snap.histograms["kernel.deltas_per_settle"];
        assert_eq!(hist.count, stats.settle_calls);
    }

    #[test]
    fn unattached_simulator_still_counts_stats() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 0u32);
        sim.drive(s, 1);
        sim.settle().unwrap();
        let stats = sim.kernel_stats();
        assert_eq!(stats.signal_commits, 1);
        assert_eq!(stats.settle_calls, 1);
    }

    #[test]
    fn counter_with_enable_full_example() {
        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        let en = sim.add_signal("en", false);
        let q = sim.add_signal("q", 0u64);
        sim.add_clocked_process("cnt", clk, Edge::Rising, move |ctx| {
            if ctx.get(en) {
                let v = ctx.get(q);
                ctx.set(q, v + 1);
            }
        });
        sim.add_clock(clk, 10).unwrap();
        sim.run_for(40).unwrap(); // edges at 10,30 rising; en=0
        assert_eq!(sim.value(q), 0);
        sim.drive(en, true);
        sim.run_for(100).unwrap(); // rising edges at 50,70,90,110,130
        assert_eq!(sim.value(q), 5);
    }
}
