//! Free-running clock generators.

use crate::signal::SignalId;

/// Identifies a clock generator registered with
/// [`Simulator::add_clock`](crate::Simulator::add_clock).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClockId(pub(crate) u32);

impl ClockId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
pub(crate) struct ClockSpec {
    pub signal: SignalId,
    pub half_period: u64,
    pub enabled: bool,
}
