//! Kernel error type.

use crate::time::SimTime;
use std::fmt;

/// Errors reported by the simulation kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The delta-cycle loop did not converge at one time step — the design
    /// contains a zero-delay combinational loop.
    DeltaOverflow {
        /// The time step at which convergence failed.
        time: SimTime,
        /// The delta-cycle limit that was exceeded.
        limit: u32,
    },
    /// A feedback cone in a compiled schedule failed to converge within
    /// its iteration bound — the cone is a divergent combinational loop.
    CombLoop {
        /// The time step at which convergence failed.
        time: SimTime,
        /// The iteration bound that was exceeded.
        limit: u32,
        /// The names of the processes forming the cone.
        processes: Vec<String>,
    },
    /// A clocked process was attached to a signal that is not `bool`.
    EdgeOnNonBool {
        /// The name of the offending signal.
        signal: String,
    },
    /// A clock was configured with a zero half-period.
    ZeroClockPeriod,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time, limit } => write!(
                f,
                "delta cycles exceeded limit {limit} at {time}: combinational loop suspected"
            ),
            SimError::CombLoop {
                time,
                limit,
                processes,
            } => write!(
                f,
                "combinational feedback cone {{{}}} did not converge within {limit} iterations at {time}",
                processes.join(", ")
            ),
            SimError::EdgeOnNonBool { signal } => {
                write!(f, "edge sensitivity requires a bool signal, got `{signal}`")
            }
            SimError::ZeroClockPeriod => write!(f, "clock half-period must be nonzero"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::DeltaOverflow {
            time: SimTime::from_ticks(7),
            limit: 1000,
        };
        assert!(e.to_string().contains("7t"));
        assert!(e.to_string().contains("1000"));
        assert!(SimError::ZeroClockPeriod
            .to_string()
            .contains("half-period"));
        let e = SimError::EdgeOnNonBool {
            signal: "addr".into(),
        };
        assert!(e.to_string().contains("addr"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SimError>();
    }
}
