//! Typed signals and their storage.

use crate::logic::{Bits, Logic, LogicVec};
use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

/// Values that can live on a [`Signal`].
///
/// A signal value must be cloneable, comparable (so the kernel can detect
/// real changes and suppress delta-cycle churn) and convertible to a
/// [`Bits`] snapshot for tracing.
pub trait SignalValue: Clone + PartialEq + fmt::Debug + 'static {
    /// The trace width in bits.
    fn width(&self) -> usize;
    /// A two-state snapshot for trace sinks. `X`/`Z` map to `0`.
    fn to_bits(&self) -> Bits;
}

impl SignalValue for bool {
    fn width(&self) -> usize {
        1
    }
    fn to_bits(&self) -> Bits {
        Bits::from_bool(*self)
    }
}

macro_rules! impl_signal_value_uint {
    ($($t:ty => $w:expr),* $(,)?) => {
        $(impl SignalValue for $t {
            fn width(&self) -> usize { $w }
            fn to_bits(&self) -> Bits { Bits::from_u64(*self as u64, $w) }
        })*
    };
}

impl_signal_value_uint!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

impl SignalValue for Logic {
    fn width(&self) -> usize {
        1
    }
    fn to_bits(&self) -> Bits {
        Bits::from_bool(self.to_bool().unwrap_or(false))
    }
}

impl SignalValue for LogicVec {
    fn width(&self) -> usize {
        LogicVec::width(self)
    }
    fn to_bits(&self) -> Bits {
        let mut words = vec![0u64; LogicVec::width(self).div_ceil(64).max(1)];
        for (i, b) in self.iter().enumerate() {
            if b.to_bool().unwrap_or(false) {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        Bits::new(LogicVec::width(self), words)
    }
}

/// An untyped signal identifier, unique within one [`Simulator`].
///
/// [`Simulator`]: crate::Simulator
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A typed handle to a signal of value type `T`.
///
/// Handles are `Copy` and can be captured by process closures.
pub struct Signal<T> {
    pub(crate) id: SignalId,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Signal<T> {
    pub(crate) fn new(id: SignalId) -> Self {
        Signal {
            id,
            _marker: PhantomData,
        }
    }

    /// The untyped identifier of this signal.
    pub fn id(self) -> SignalId {
        self.id
    }
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Signal<T> {}

impl<T> fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signal#{}", self.id.0)
    }
}

impl<T> PartialEq for Signal<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<T> Eq for Signal<T> {}

/// Type-erased per-signal storage used inside the scheduler.
pub(crate) trait AnyStore: Any {
    /// Applies the pending value; returns true if the value changed.
    fn commit(&mut self) -> bool;
    /// Snapshot of the current value for tracing.
    fn bits(&self) -> Bits;
    /// For edge detection on `bool` signals: (previous, current).
    fn bool_edge(&self) -> Option<(bool, bool)>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

pub(crate) struct TypedStore<T: SignalValue> {
    pub current: T,
    pub previous: T,
    pub pending: Option<T>,
}

impl<T: SignalValue> TypedStore<T> {
    pub fn new(init: T) -> Self {
        TypedStore {
            previous: init.clone(),
            current: init,
            pending: None,
        }
    }
}

impl<T: SignalValue> AnyStore for TypedStore<T> {
    fn commit(&mut self) -> bool {
        match self.pending.take() {
            Some(v) if v != self.current => {
                self.previous = std::mem::replace(&mut self.current, v);
                true
            }
            Some(_) => false,
            None => false,
        }
    }

    fn bits(&self) -> Bits {
        self.current.to_bits()
    }

    fn bool_edge(&self) -> Option<(bool, bool)> {
        let prev = (&self.previous as &dyn Any).downcast_ref::<bool>()?;
        let cur = (&self.current as &dyn Any).downcast_ref::<bool>()?;
        Some((*prev, *cur))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

pub(crate) struct SignalSlot {
    pub name: String,
    pub width: usize,
    pub store: Box<dyn AnyStore>,
    /// Processes sensitive to any change of this signal.
    pub sensitive: Vec<crate::process::ProcessId>,
    /// Processes sensitive to a rising edge (bool signals only).
    pub sensitive_rising: Vec<crate::process::ProcessId>,
    /// Processes sensitive to a falling edge (bool signals only).
    pub sensitive_falling: Vec<crate::process::ProcessId>,
    pub traced: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_store_commit_detects_change() {
        let mut s = TypedStore::new(false);
        s.pending = Some(true);
        assert!(s.commit());
        assert!(s.current);
        assert!(!s.previous);
        // Committing the same value is not a change.
        s.pending = Some(true);
        assert!(!s.commit());
    }

    #[test]
    fn typed_store_bool_edge() {
        let mut s = TypedStore::new(false);
        s.pending = Some(true);
        s.commit();
        assert_eq!(s.bool_edge(), Some((false, true)));
        let t = TypedStore::new(7u32);
        assert_eq!(t.bool_edge(), None);
    }

    #[test]
    fn signal_value_widths() {
        assert_eq!(true.width(), 1);
        assert_eq!(0u8.width(), 8);
        assert_eq!(0u16.width(), 16);
        assert_eq!(0u32.width(), 32);
        assert_eq!(0u64.width(), 64);
        assert_eq!(Logic::X.width(), 1);
    }

    #[test]
    fn logicvec_to_bits_maps_x_to_zero() {
        let mut v = LogicVec::from_u64(0b111, 3);
        v.set_bit(1, Logic::X);
        let b = SignalValue::to_bits(&v);
        assert!(b.bit(0));
        assert!(!b.bit(1));
        assert!(b.bit(2));
    }

    #[test]
    fn signal_handle_is_copy_and_eq() {
        let a: Signal<bool> = Signal::new(SignalId(3));
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.id().index(), 3);
        assert_eq!(format!("{a:?}"), "Signal#3");
    }
}
