//! Compiled-simulation backend: a levelized static schedule.
//!
//! The event-driven [`Simulator`](crate::Simulator) discovers evaluation
//! order at run time: every commit walks sensitivity lists, enqueues the
//! woken processes and loops delta cycles until the netlist is quiet.
//! That discovery cost is paid on *every* settle even though the netlist
//! never changes after elaboration. The compiled backend pays it once:
//! at the first [`CompiledSim::settle`] the process graph (declared
//! write-sets against declared read-sets) is condensed into strongly
//! connected components and topologically sorted, producing a fixed
//! *schedule* of cones. A settle then walks that schedule straight
//! through — each acyclic cone evaluates at most once, immediately
//! commits its writes, and activation flows forward along the already
//! sorted order. Only *feedback* cones (components with a cycle) fall
//! back to bounded delta iteration, and a cone that fails to converge
//! reports a [`SimError::CombLoop`] naming its processes instead of
//! hanging.
//!
//! Signal state is flattened into struct-of-arrays `u64` buffers
//! (current / pending / pending-mask), so reads and writes are plain
//! indexed loads and stores with no `dyn Any` dispatch and no
//! allocation. Any value implementing [`WordValue`] — the scalar types
//! `bool`, `u8`, `u16`, `u32`, `u64` — can live on a compiled signal.
//!
//! # Semantics relative to the event kernel
//!
//! Two-phase (nonblocking) writes, change-suppressed activation, edge
//! triggering and `run_at_init` behave exactly as in the event kernel,
//! so a netlist whose activations form a chain (each process woken by
//! at most one upstream commit per settle) produces identical
//! [`ActivityCoverage`] run counts. The one divergence is *diamond
//! coalescing*: where the event kernel may evaluate a process twice in
//! one settle (woken early with stale fan-in, then again after the
//! fan-in commits), the levelized schedule evaluates it once with all
//! inputs final. The `stbus_rtl` netlist has no such diamond, which the
//! cross-engine differential tests enforce empirically.

use crate::coverage::{ActivityCoverage, BranchActivity, BranchId, ProcessActivity};
use crate::error::SimError;
use crate::process::{Edge, ProcessId};
use crate::signal::{Signal, SignalId, SignalValue};
use crate::time::SimTime;
use std::fmt;
use telemetry::{Counter, MetricsRegistry};

/// Selects which simulation kernel elaborates and runs a netlist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SimBackend {
    /// The event-driven delta-cycle scheduler — the reference oracle.
    #[default]
    Event,
    /// The levelized static-schedule backend in this module.
    Compiled,
}

impl SimBackend {
    /// The canonical lowercase name (`"event"` / `"compiled"`).
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::Event => "event",
            SimBackend::Compiled => "compiled",
        }
    }

    /// Every backend, in declaration order.
    pub const ALL: [SimBackend; 2] = [SimBackend::Event, SimBackend::Compiled];
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SimBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(SimBackend::Event),
            "compiled" => Ok(SimBackend::Compiled),
            other => Err(format!(
                "unknown engine `{other}` (expected `event` or `compiled`)"
            )),
        }
    }
}

/// Signal values the compiled backend can flatten into one 64-bit word
/// of its struct-of-arrays state buffer.
///
/// `from_word(v.to_word())` must round-trip every representable value.
pub trait WordValue: SignalValue {
    /// Packs the value into a `u64` word.
    fn to_word(&self) -> u64;
    /// Unpacks a value previously produced by [`WordValue::to_word`].
    fn from_word(word: u64) -> Self;
}

impl WordValue for bool {
    fn to_word(&self) -> u64 {
        *self as u64
    }
    fn from_word(word: u64) -> Self {
        word != 0
    }
}

macro_rules! impl_word_value_uint {
    ($($t:ty),* $(,)?) => {
        $(impl WordValue for $t {
            fn to_word(&self) -> u64 { *self as u64 }
            fn from_word(word: u64) -> Self { word as $t }
        })*
    };
}

impl_word_value_uint!(u8, u16, u32, u64);

/// Cumulative work counters of one [`CompiledSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompiledStats {
    /// Calls to [`CompiledSim::settle`] (including those implied by
    /// [`CompiledSim::run_for`]).
    pub settle_calls: u64,
    /// Process bodies run (activations).
    pub process_activations: u64,
    /// Signal commits that actually changed a value.
    pub signal_commits: u64,
    /// Extra iterations spent converging feedback cones (0 on a fully
    /// acyclic schedule).
    pub fallback_iterations: u64,
}

/// Live metric handles published under the `kernel.compiled.*`
/// namespace when a registry is attached.
struct CompiledMetrics {
    settle_calls: Counter,
    process_activations: Counter,
    signal_commits: Counter,
    fallback_iterations: Counter,
}

impl CompiledMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        CompiledMetrics {
            settle_calls: registry.counter("kernel.compiled.settle_calls"),
            process_activations: registry.counter("kernel.compiled.process_activations"),
            signal_commits: registry.counter("kernel.compiled.signal_commits"),
            fallback_iterations: registry.counter("kernel.compiled.fallback_iterations"),
        }
    }
}

/// What wakes a process.
enum Trigger {
    /// Sensitive to any value change of the listed signals.
    Comb,
    /// Sensitive to an edge of a `bool` signal (which edge is encoded in
    /// the signal's `sensitive_rising`/`sensitive_falling` lists).
    Edge(SignalId),
}

/// Boxed process body; taken out of the slot during evaluation so the
/// context can borrow the rest of the simulator mutably.
type ProcBody = Box<dyn FnMut(&mut CompiledCtx<'_>)>;

struct CompProc {
    name: String,
    body: Option<ProcBody>,
    trigger: Trigger,
    /// Declared read set (sensitivity) — empty for edge processes.
    reads: Vec<SignalId>,
    /// Declared write set; schedule edges point from writers to readers.
    writes: Vec<SignalId>,
    runs: u64,
    run_at_init: bool,
    /// Whether the initial `run_at_init` activation already happened.
    inited: bool,
    /// Bitmask over signal indexes of the declared write set, used by
    /// debug builds to catch undeclared writes (which would silently
    /// break the static schedule).
    #[cfg(debug_assertions)]
    write_mask: Vec<u64>,
}

/// One entry of the static schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Cone {
    /// A single process outside any cycle: evaluates at most once per
    /// settle.
    Acyclic(u32),
    /// A strongly connected component with a cycle (or self-loop):
    /// iterated until quiet, bounded by the delta limit.
    Feedback(Vec<u32>),
}

/// The execution context passed to compiled process bodies.
///
/// Mirrors [`ProcCtx`](crate::ProcCtx): reads see current values, writes
/// are two-phase and become visible when the process's commit lands.
pub struct CompiledCtx<'a> {
    cur: &'a [u64],
    pend: &'a mut [u64],
    has_pend: &'a mut [bool],
    written: &'a mut Vec<u32>,
    branch_hits: &'a mut [u64],
    time: SimTime,
    #[cfg(debug_assertions)]
    write_mask: &'a [u64],
    #[cfg(debug_assertions)]
    names: &'a [String],
}

impl CompiledCtx<'_> {
    /// Reads the current value of a signal.
    pub fn get<T: WordValue>(&self, sig: Signal<T>) -> T {
        T::from_word(self.cur[sig.id.index()])
    }

    /// Schedules `value` onto `sig` for this process's commit phase.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `sig` is not in the process's declared
    /// write set — an undeclared write would invalidate the static
    /// schedule.
    pub fn set<T: WordValue>(&mut self, sig: Signal<T>, value: T) {
        let i = sig.id.index();
        #[cfg(debug_assertions)]
        if self.write_mask[i / 64] & (1 << (i % 64)) == 0 {
            panic!(
                "compiled process wrote undeclared signal `{}`",
                self.names[i]
            );
        }
        let word = value.to_word();
        if !self.has_pend[i] {
            // No-op suppression: re-driving the committed value cannot
            // change anything, so it never has to enter the commit scan.
            // This keeps the per-settle commit cost proportional to the
            // signals that actually toggle, not to the write set.
            if word == self.cur[i] {
                return;
            }
            self.has_pend[i] = true;
            self.written.push(i as u32);
        }
        self.pend[i] = word;
    }

    /// Records a hit on a coverage branch point.
    pub fn cov(&mut self, branch: BranchId) {
        self.branch_hits[branch.index()] += 1;
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }
}

/// A simulator that runs a netlist through a levelized static schedule.
///
/// The registration API parallels the event-driven
/// [`Simulator`](crate::Simulator) — signals, combinational processes,
/// clocked processes, coverage branches — with one addition: processes
/// declare their *write* sets, which is what lets the schedule be built
/// once instead of discovered per delta.
///
/// ```
/// use sim_kernel::{CompiledSim, Edge};
///
/// let mut sim = CompiledSim::new();
/// let clk = sim.add_signal("clk", false);
/// let d = sim.add_signal("d", 0u8);
/// let q = sim.add_signal("q", 0u8);
/// let q2 = sim.add_signal("q2", 0u8);
/// sim.add_clocked_process("reg", clk, Edge::Rising, &[q.id()], move |ctx| {
///     let v = ctx.get(d);
///     ctx.set(q, v);
/// });
/// sim.add_comb_process("follow", &[q.id()], &[q2.id()], move |ctx| {
///     let v = ctx.get(q);
///     ctx.set(q2, v.wrapping_add(1));
/// });
/// sim.drive(d, 7u8);
/// sim.settle().unwrap();
/// sim.drive(clk, true);
/// sim.settle().unwrap();
/// assert_eq!(sim.value(q), 7);
/// assert_eq!(sim.value(q2), 8);
/// ```
pub struct CompiledSim {
    names: Vec<String>,
    widths: Vec<usize>,
    /// Struct-of-arrays signal state: committed values ...
    cur: Vec<u64>,
    /// ... pending (written, uncommitted) values ...
    pend: Vec<u64>,
    /// ... and the per-signal pending mask.
    has_pend: Vec<bool>,
    /// Indexes with `has_pend` set, in write order.
    written: Vec<u32>,
    /// Scratch list swapped with `written` during commits.
    commit_scratch: Vec<u32>,
    /// Per-signal comb sensitivity (process indexes).
    sensitive: Vec<Vec<u32>>,
    /// Per-signal rising/falling sensitivity (bool signals only).
    sensitive_rising: Vec<Vec<u32>>,
    sensitive_falling: Vec<Vec<u32>>,
    procs: Vec<CompProc>,
    branch_names: Vec<String>,
    branch_hits: Vec<u64>,
    /// The levelized schedule; rebuilt lazily after any registration.
    schedule: Option<Vec<Cone>>,
    /// Activation marks, reused across settles.
    activated: Vec<bool>,
    time: SimTime,
    delta_limit: u32,
    stats: CompiledStats,
    metrics: Option<CompiledMetrics>,
}

impl Default for CompiledSim {
    fn default() -> Self {
        Self::new()
    }
}

impl CompiledSim {
    /// Creates an empty compiled simulator.
    pub fn new() -> Self {
        CompiledSim {
            names: Vec::new(),
            widths: Vec::new(),
            cur: Vec::new(),
            pend: Vec::new(),
            has_pend: Vec::new(),
            written: Vec::new(),
            commit_scratch: Vec::new(),
            sensitive: Vec::new(),
            sensitive_rising: Vec::new(),
            sensitive_falling: Vec::new(),
            procs: Vec::new(),
            branch_names: Vec::new(),
            branch_hits: Vec::new(),
            schedule: None,
            activated: Vec::new(),
            time: SimTime::ZERO,
            delta_limit: 1000,
            stats: CompiledStats::default(),
            metrics: None,
        }
    }

    /// Registers a signal with an initial value and returns its handle.
    pub fn add_signal<T: WordValue>(&mut self, name: &str, init: T) -> Signal<T> {
        let id = SignalId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.widths.push(init.width());
        self.cur.push(init.to_word());
        self.pend.push(0);
        self.has_pend.push(false);
        self.sensitive.push(Vec::new());
        self.sensitive_rising.push(Vec::new());
        self.sensitive_falling.push(Vec::new());
        self.schedule = None;
        Signal::new(id)
    }

    /// Registers a combinational process sensitive to `reads` and
    /// writing only signals in `writes`. Runs once at the next settle
    /// (`run_at_init`), like the event kernel's combinational processes.
    pub fn add_comb_process(
        &mut self,
        name: &str,
        reads: &[SignalId],
        writes: &[SignalId],
        body: impl FnMut(&mut CompiledCtx<'_>) + 'static,
    ) -> ProcessId {
        let idx = self.procs.len() as u32;
        for sig in reads {
            self.sensitive[sig.index()].push(idx);
        }
        self.push_proc(name, Trigger::Comb, reads, writes, true, Box::new(body))
    }

    /// Registers a clocked process triggered by an edge of `clk`.
    ///
    /// Like an HDL process suspended on `wait until rising_edge(clk)`,
    /// it does not run at initialization.
    pub fn add_clocked_process(
        &mut self,
        name: &str,
        clk: Signal<bool>,
        edge: Edge,
        writes: &[SignalId],
        body: impl FnMut(&mut CompiledCtx<'_>) + 'static,
    ) -> ProcessId {
        let idx = self.procs.len() as u32;
        match edge {
            Edge::Rising => self.sensitive_rising[clk.id().index()].push(idx),
            Edge::Falling => self.sensitive_falling[clk.id().index()].push(idx),
            Edge::Any => self.sensitive[clk.id().index()].push(idx),
        }
        self.push_proc(
            name,
            Trigger::Edge(clk.id()),
            &[],
            writes,
            false,
            Box::new(body),
        )
    }

    fn push_proc(
        &mut self,
        name: &str,
        trigger: Trigger,
        reads: &[SignalId],
        writes: &[SignalId],
        run_at_init: bool,
        body: Box<dyn FnMut(&mut CompiledCtx<'_>)>,
    ) -> ProcessId {
        let id = ProcessId(self.procs.len() as u32);
        #[cfg(debug_assertions)]
        let write_mask = {
            let mut mask = vec![0u64; self.names.len().div_ceil(64).max(1)];
            for sig in writes {
                mask[sig.index() / 64] |= 1 << (sig.index() % 64);
            }
            mask
        };
        self.procs.push(CompProc {
            name: name.to_owned(),
            body: Some(body),
            trigger,
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            runs: 0,
            run_at_init,
            inited: false,
            #[cfg(debug_assertions)]
            write_mask,
        });
        self.activated.push(false);
        self.schedule = None;
        id
    }

    /// Number of registered signals.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Registers a coverage branch point (`"process/branch"` label).
    pub fn add_branch(&mut self, name: &str) -> BranchId {
        let id = BranchId(self.branch_names.len() as u32);
        self.branch_names.push(name.to_owned());
        self.branch_hits.push(0);
        id
    }

    /// Writes a value onto a signal from outside any process; it commits
    /// at the start of the next [`CompiledSim::settle`].
    pub fn drive<T: WordValue>(&mut self, sig: Signal<T>, value: T) {
        let i = sig.id.index();
        let word = value.to_word();
        if !self.has_pend[i] {
            // Same no-op suppression as [`CompiledCtx::set`]: an external
            // drive of the already-committed value is not a write.
            if word == self.cur[i] {
                return;
            }
            self.has_pend[i] = true;
            self.written.push(i as u32);
        }
        self.pend[i] = word;
    }

    /// Reads the committed value of a signal.
    pub fn value<T: WordValue>(&self, sig: Signal<T>) -> T {
        T::from_word(self.cur[sig.id.index()])
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Replaces the feedback-cone iteration bound (default 1000).
    pub fn set_delta_limit(&mut self, limit: u32) {
        self.delta_limit = limit.max(1);
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> CompiledStats {
        self.stats
    }

    /// Additionally publishes the work counters as shared metrics under
    /// the `kernel.compiled.*` namespace.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let m = CompiledMetrics::new(registry);
        m.settle_calls.add(self.stats.settle_calls);
        m.process_activations.add(self.stats.process_activations);
        m.signal_commits.add(self.stats.signal_commits);
        m.fallback_iterations.add(self.stats.fallback_iterations);
        self.metrics = Some(m);
    }

    /// The process-activity and branch coverage report.
    pub fn activity_coverage(&self) -> ActivityCoverage {
        ActivityCoverage {
            processes: self
                .procs
                .iter()
                .map(|p| ProcessActivity {
                    name: p.name.clone(),
                    runs: p.runs,
                })
                .collect(),
            branches: self
                .branch_names
                .iter()
                .zip(&self.branch_hits)
                .map(|(name, &hits)| BranchActivity {
                    name: name.clone(),
                    hits,
                })
                .collect(),
        }
    }

    /// The compiled schedule as process-name groups, in evaluation
    /// order; feedback cones appear as multi-element (or self-looping
    /// single-element) groups. Compiles the schedule if needed.
    pub fn schedule_names(&mut self) -> Vec<Vec<String>> {
        self.ensure_compiled();
        self.schedule
            .as_ref()
            .expect("just compiled")
            .iter()
            .map(|cone| match cone {
                Cone::Acyclic(p) => vec![self.procs[*p as usize].name.clone()],
                Cone::Feedback(ps) => ps
                    .iter()
                    .map(|&p| self.procs[p as usize].name.clone())
                    .collect(),
            })
            .collect()
    }

    /// How many feedback cones the schedule contains.
    pub fn feedback_cones(&mut self) -> usize {
        self.ensure_compiled();
        self.schedule
            .as_ref()
            .expect("just compiled")
            .iter()
            .filter(|c| matches!(c, Cone::Feedback(_)))
            .count()
    }

    /// Builds the static schedule: Tarjan SCC condensation of the
    /// writer→reader process graph, then a deterministic Kahn topological
    /// sort (components become ready in registration-index order).
    fn ensure_compiled(&mut self) {
        if self.schedule.is_some() {
            return;
        }
        let n = self.procs.len();
        // Adjacency: p → q when p writes a signal q is triggered by.
        // Readers per signal: comb sensitivity plus edge clocks.
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); self.names.len()];
        for (qi, q) in self.procs.iter().enumerate() {
            match &q.trigger {
                Trigger::Comb => {
                    for sig in &q.reads {
                        readers[sig.index()].push(qi as u32);
                    }
                }
                Trigger::Edge(sig) => readers[sig.index()].push(qi as u32),
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pi, p) in self.procs.iter().enumerate() {
            for sig in &p.writes {
                for &qi in &readers[sig.index()] {
                    if !adj[pi].contains(&qi) {
                        adj[pi].push(qi);
                    }
                }
            }
            adj[pi].sort_unstable();
        }
        let sccs = tarjan_sccs(&adj);
        // Map each process to its component, detect internal cycles.
        let mut comp_of = vec![0u32; n];
        for (ci, comp) in sccs.iter().enumerate() {
            for &p in comp {
                comp_of[p as usize] = ci as u32;
            }
        }
        let nc = sccs.len();
        let mut comp_adj: Vec<Vec<u32>> = vec![Vec::new(); nc];
        let mut indegree = vec![0usize; nc];
        let mut has_self_loop = vec![false; nc];
        for (pi, targets) in adj.iter().enumerate() {
            let cp = comp_of[pi] as usize;
            for &qi in targets {
                let cq = comp_of[qi as usize] as usize;
                if cp == cq {
                    if pi == qi as usize {
                        has_self_loop[cp] = true;
                    }
                    continue;
                }
                if !comp_adj[cp].contains(&(cq as u32)) {
                    comp_adj[cp].push(cq as u32);
                    indegree[cq] += 1;
                }
            }
        }
        // Kahn over the condensation; ties broken by the smallest member
        // process index so the order is a pure function of registration
        // order, never of hash state or SCC discovery order.
        let comp_key: Vec<u32> = sccs
            .iter()
            .map(|c| c.iter().copied().min().unwrap_or(0))
            .collect();
        let mut ready: std::collections::BTreeSet<(u32, u32)> = (0..nc)
            .filter(|&c| indegree[c] == 0)
            .map(|c| (comp_key[c], c as u32))
            .collect();
        let mut order: Vec<Cone> = Vec::with_capacity(nc);
        while let Some(&(key, c)) = ready.iter().next() {
            ready.remove(&(key, c));
            let comp = &sccs[c as usize];
            if comp.len() > 1 || has_self_loop[c as usize] {
                let mut members = comp.clone();
                members.sort_unstable();
                order.push(Cone::Feedback(members));
            } else {
                order.push(Cone::Acyclic(comp[0]));
            }
            for &cq in &comp_adj[c as usize] {
                indegree[cq as usize] -= 1;
                if indegree[cq as usize] == 0 {
                    ready.insert((comp_key[cq as usize], cq));
                }
            }
        }
        debug_assert_eq!(order.len(), nc, "condensation must be acyclic");
        self.schedule = Some(order);
    }

    /// Commits every pending write, bumping counters and marking the
    /// processes each actual change wakes. Returns how many signals
    /// changed.
    fn commit_pending(&mut self) -> usize {
        let mut scratch = std::mem::take(&mut self.commit_scratch);
        scratch.clear();
        std::mem::swap(&mut scratch, &mut self.written);
        let mut changed = 0usize;
        for &i in &scratch {
            let i = i as usize;
            self.has_pend[i] = false;
            let new = self.pend[i];
            let old = self.cur[i];
            if new == old {
                continue;
            }
            self.cur[i] = new;
            self.stats.signal_commits += 1;
            changed += 1;
            for &p in &self.sensitive[i] {
                self.activated[p as usize] = true;
            }
            if self.widths[i] == 1 {
                let list = if new != 0 {
                    &self.sensitive_rising[i]
                } else {
                    &self.sensitive_falling[i]
                };
                for &p in list {
                    self.activated[p as usize] = true;
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.signal_commits.add(changed as u64);
        }
        self.commit_scratch = scratch;
        changed
    }

    /// Runs one process body against the current state; its writes stay
    /// pending until the caller commits.
    fn run_proc(&mut self, p: usize) {
        self.activated[p] = false;
        let slot = &mut self.procs[p];
        slot.runs += 1;
        self.stats.process_activations += 1;
        let mut body = slot.body.take().expect("process re-entered");
        {
            let mut ctx = CompiledCtx {
                cur: &self.cur,
                pend: &mut self.pend,
                has_pend: &mut self.has_pend,
                written: &mut self.written,
                branch_hits: &mut self.branch_hits,
                time: self.time,
                #[cfg(debug_assertions)]
                write_mask: &self.procs[p].write_mask,
                #[cfg(debug_assertions)]
                names: &self.names,
            };
            body(&mut ctx);
        }
        self.procs[p].body = Some(body);
        if let Some(m) = &self.metrics {
            m.process_activations.inc();
        }
    }

    /// Propagates all pending external writes through the schedule.
    ///
    /// # Errors
    ///
    /// [`SimError::CombLoop`] when a feedback cone fails to converge
    /// within the delta limit.
    pub fn settle(&mut self) -> Result<(), SimError> {
        self.ensure_compiled();
        self.stats.settle_calls += 1;
        if let Some(m) = &self.metrics {
            m.settle_calls.inc();
        }
        // First-settle activations for processes registered run_at_init.
        for p in 0..self.procs.len() {
            if self.procs[p].run_at_init && !self.procs[p].inited {
                self.procs[p].inited = true;
                self.activated[p] = true;
            }
        }
        // Commit external drives; actual changes mark their readers.
        self.commit_pending();
        // Walk the schedule. Each acyclic cone evaluates at most once
        // and commits immediately, so activation only ever flows forward.
        let schedule = self.schedule.take().expect("just compiled");
        let mut result = Ok(());
        'walk: for cone in &schedule {
            match cone {
                Cone::Acyclic(p) => {
                    let p = *p as usize;
                    if self.activated[p] {
                        self.run_proc(p);
                        self.commit_pending();
                    }
                }
                Cone::Feedback(members) => {
                    // Bounded delta iteration local to the cone: re-run
                    // activated members until the cone is quiet.
                    let mut iterations = 0u32;
                    while members.iter().any(|&p| self.activated[p as usize]) {
                        iterations += 1;
                        if iterations > self.delta_limit {
                            result = Err(SimError::CombLoop {
                                time: self.time,
                                limit: self.delta_limit,
                                processes: members
                                    .iter()
                                    .map(|&p| self.procs[p as usize].name.clone())
                                    .collect(),
                            });
                            break 'walk;
                        }
                        if iterations > 1 {
                            self.stats.fallback_iterations += 1;
                            if let Some(m) = &self.metrics {
                                m.fallback_iterations.inc();
                            }
                        }
                        for &p in members {
                            let p = p as usize;
                            if self.activated[p] {
                                self.run_proc(p);
                                self.commit_pending();
                            }
                        }
                    }
                }
            }
        }
        self.schedule = Some(schedule);
        result
    }

    /// Settles, then advances simulated time by `ticks`.
    ///
    /// The compiled backend has no event queue — time exists only to
    /// stamp traces and error messages — so this is settle-plus-advance.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledSim::settle`] errors.
    pub fn run_for(&mut self, ticks: u64) -> Result<(), SimError> {
        self.settle()?;
        self.time += ticks;
        Ok(())
    }
}

/// Iterative Tarjan strongly-connected components over a process
/// adjacency list. Components are returned in reverse topological order
/// of discovery; the caller re-sorts them, so only the *partition* is
/// used, which makes the result independent of traversal details.
fn tarjan_sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != u32::MAX {
            continue;
        }
        frames.push((start as u32, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vu = v as usize;
            if *child < adj[vu].len() {
                let w = adj[vu][*child] as usize;
                *child += 1;
                if index[w] == u32::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[vu] = lowlink[vu].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pu = parent as usize;
                    lowlink[pu] = lowlink[pu].min(lowlink[vu]);
                }
                if lowlink[vu] == index[vu] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w as usize == vu {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_and_display() {
        assert_eq!("event".parse::<SimBackend>().unwrap(), SimBackend::Event);
        assert_eq!(
            "compiled".parse::<SimBackend>().unwrap(),
            SimBackend::Compiled
        );
        assert!("vhdl".parse::<SimBackend>().is_err());
        assert_eq!(SimBackend::Compiled.to_string(), "compiled");
        assert_eq!(SimBackend::default(), SimBackend::Event);
    }

    #[test]
    fn word_value_round_trips() {
        assert!(bool::from_word(true.to_word()));
        assert_eq!(u8::from_word(0xabu8.to_word()), 0xab);
        assert_eq!(u16::from_word(0xbeefu16.to_word()), 0xbeef);
        assert_eq!(u32::from_word(0xdead_beefu32.to_word()), 0xdead_beef);
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
    }

    /// A 3-stage pipeline of combinational processes: each evaluates
    /// exactly once per settle, in dependency order, regardless of
    /// registration order.
    #[test]
    fn acyclic_chain_single_pass() {
        let mut sim = CompiledSim::new();
        let a = sim.add_signal("a", 0u32);
        let b = sim.add_signal("b", 0u32);
        let c = sim.add_signal("c", 0u32);
        let d = sim.add_signal("d", 0u32);
        // Registered deliberately in reverse dependency order.
        sim.add_comb_process("p_cd", &[c.id()], &[d.id()], move |ctx| {
            let v = ctx.get(c);
            ctx.set(d, v + 1);
        });
        sim.add_comb_process("p_bc", &[b.id()], &[c.id()], move |ctx| {
            let v = ctx.get(b);
            ctx.set(c, v + 1);
        });
        sim.add_comb_process("p_ab", &[a.id()], &[b.id()], move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v + 1);
        });
        sim.drive(a, 10u32);
        sim.settle().unwrap();
        assert_eq!(sim.value(d), 13);
        // Init pass: each ran once.
        let cov = sim.activity_coverage();
        assert!(cov.processes.iter().all(|p| p.runs == 1), "{cov:?}");
        // A second settle with a real change again runs each body once.
        sim.drive(a, 20u32);
        sim.settle().unwrap();
        assert_eq!(sim.value(d), 23);
        let cov = sim.activity_coverage();
        assert!(cov.processes.iter().all(|p| p.runs == 2), "{cov:?}");
        // A no-change drive wakes nobody.
        sim.drive(a, 20u32);
        sim.settle().unwrap();
        let cov = sim.activity_coverage();
        assert!(cov.processes.iter().all(|p| p.runs == 2), "{cov:?}");
    }

    #[test]
    fn schedule_order_is_levelized_and_deterministic() {
        let build = || {
            let mut sim = CompiledSim::new();
            let a = sim.add_signal("a", 0u32);
            let b = sim.add_signal("b", 0u32);
            let c = sim.add_signal("c", 0u32);
            sim.add_comb_process("sink", &[b.id(), c.id()], &[], |_| {});
            sim.add_comb_process("mid_c", &[a.id()], &[c.id()], move |ctx| {
                let v = ctx.get(a);
                ctx.set(c, v);
            });
            sim.add_comb_process("mid_b", &[a.id()], &[b.id()], move |ctx| {
                let v = ctx.get(a);
                ctx.set(b, v);
            });
            sim
        };
        let order = build().schedule_names();
        // Sources before the sink; equal-level ties resolved by
        // registration index (mid_c registered before mid_b).
        assert_eq!(
            order,
            vec![
                vec!["mid_c".to_owned()],
                vec!["mid_b".to_owned()],
                vec!["sink".to_owned()]
            ]
        );
        // Rebuilding the same netlist yields the identical order.
        assert_eq!(build().schedule_names(), order);
    }

    /// A converging feedback pair (each process copies the other's
    /// signal) is detected as a cycle and settled by bounded iteration.
    #[test]
    fn feedback_cone_routed_to_delta_fallback() {
        let mut sim = CompiledSim::new();
        let x = sim.add_signal("x", 0u32);
        let y = sim.add_signal("y", 0u32);
        sim.add_comb_process("fwd", &[x.id()], &[y.id()], move |ctx| {
            let v = ctx.get(x);
            ctx.set(y, v);
        });
        sim.add_comb_process("bwd", &[y.id()], &[x.id()], move |ctx| {
            let v = ctx.get(y);
            ctx.set(x, v);
        });
        assert_eq!(sim.feedback_cones(), 1);
        assert_eq!(
            sim.schedule_names(),
            vec![vec!["fwd".to_owned(), "bwd".to_owned()]]
        );
        sim.settle().unwrap();
        // Driving y forces the value to flow against the cone's member
        // order (bwd first, then fwd on the next iteration), so the
        // bounded fallback must take more than one pass.
        sim.drive(y, 9u32);
        sim.settle().unwrap();
        assert_eq!(sim.value(x), 9);
        assert_eq!(sim.value(y), 9);
        assert!(sim.stats().fallback_iterations > 0);
    }

    /// A self-loop (process reading its own output) is also a feedback
    /// cone, even though its SCC has one member.
    #[test]
    fn self_loop_is_a_feedback_cone() {
        let mut sim = CompiledSim::new();
        let x = sim.add_signal("x", 0u32);
        sim.add_comb_process("settle_down", &[x.id()], &[x.id()], move |ctx| {
            let v = ctx.get(x);
            ctx.set(x, if v > 3 { v - 1 } else { v });
        });
        assert_eq!(sim.feedback_cones(), 1);
        sim.drive(x, 7u32);
        sim.settle().unwrap();
        assert_eq!(sim.value(x), 3);
    }

    /// An unstable combinational loop errors out with the cone's process
    /// names instead of hanging.
    #[test]
    fn divergent_loop_reports_comb_loop_error() {
        let mut sim = CompiledSim::new();
        let x = sim.add_signal("x", false);
        sim.add_comb_process("inv", &[x.id()], &[x.id()], move |ctx| {
            let v = ctx.get(x);
            ctx.set(x, !v);
        });
        sim.set_delta_limit(64);
        let err = sim.settle().unwrap_err();
        match &err {
            SimError::CombLoop {
                limit, processes, ..
            } => {
                assert_eq!(*limit, 64);
                assert_eq!(processes, &["inv".to_owned()]);
            }
            other => panic!("expected CombLoop, got {other:?}"),
        }
        assert!(err.to_string().contains("inv"), "{err}");
        assert!(err.to_string().contains("feedback cone"), "{err}");
    }

    /// Edge processes fire only on their edge and never at init; a
    /// same-value clock drive is not an edge.
    #[test]
    fn edge_semantics_match_event_kernel() {
        let mut sim = CompiledSim::new();
        let clk = sim.add_signal("clk", false);
        let q = sim.add_signal("q", 0u32);
        sim.add_clocked_process("count", clk, Edge::Rising, &[q.id()], move |ctx| {
            let v = ctx.get(q);
            ctx.set(q, v + 1);
        });
        sim.settle().unwrap();
        assert_eq!(sim.value(q), 0, "edge process must not run at init");
        sim.drive(clk, false);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), 0, "no change, no edge");
        sim.drive(clk, true);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), 1);
        sim.drive(clk, false);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), 1, "falling edge does not trigger Rising");
        sim.drive(clk, true);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), 2);
    }

    /// The edge process's write must wake downstream combinational
    /// logic in the same settle, like a delta cascade.
    #[test]
    fn edge_write_cascades_to_comb_in_same_settle() {
        let mut sim = CompiledSim::new();
        let clk = sim.add_signal("clk", false);
        let q = sim.add_signal("q", 0u32);
        let q1 = sim.add_signal("q1", 0u32);
        sim.add_clocked_process("reg", clk, Edge::Rising, &[q.id()], move |ctx| {
            let v = ctx.get(q);
            ctx.set(q, v + 1);
        });
        sim.add_comb_process("mirror", &[q.id()], &[q1.id()], move |ctx| {
            let v = ctx.get(q);
            ctx.set(q1, v * 10);
        });
        sim.settle().unwrap();
        sim.drive(clk, true);
        sim.settle().unwrap();
        assert_eq!(sim.value(q), 1);
        assert_eq!(sim.value(q1), 10);
        // mirror ran once at init and once after the edge.
        let cov = sim.activity_coverage();
        let mirror = cov.processes.iter().find(|p| p.name == "mirror").unwrap();
        assert_eq!(mirror.runs, 2);
    }

    #[test]
    fn branch_coverage_and_metrics() {
        let reg = MetricsRegistry::default();
        let mut sim = CompiledSim::new();
        let a = sim.add_signal("a", 0u32);
        let b = sim.add_signal("b", 0u32);
        let hit = sim.add_branch("p/pos");
        let miss = sim.add_branch("p/neg");
        sim.add_comb_process("p", &[a.id()], &[b.id()], move |ctx| {
            let v = ctx.get(a);
            if v > 0 {
                ctx.cov(hit);
            } else {
                ctx.cov(miss);
            }
            ctx.set(b, v);
        });
        sim.attach_metrics(&reg);
        sim.drive(a, 1u32);
        sim.settle().unwrap();
        let cov = sim.activity_coverage();
        assert_eq!(cov.branch("p/pos").unwrap().hits, 1);
        assert_eq!(cov.branch("p/neg").unwrap().hits, 0);
        let snap = reg.snapshot();
        let get = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
        assert_eq!(get("kernel.compiled.settle_calls"), 1);
        assert!(get("kernel.compiled.process_activations") >= 1);
        assert!(get("kernel.compiled.signal_commits") >= 1);
    }

    #[test]
    fn run_for_advances_time() {
        let mut sim = CompiledSim::new();
        let a = sim.add_signal("a", false);
        sim.drive(a, true);
        sim.run_for(25).unwrap();
        assert_eq!(sim.now(), SimTime::from_ticks(25));
        assert!(sim.value(a));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "undeclared signal")]
    fn undeclared_write_panics_in_debug() {
        let mut sim = CompiledSim::new();
        let a = sim.add_signal("a", false);
        let b = sim.add_signal("b", false);
        sim.add_comb_process("rogue", &[a.id()], &[], move |ctx| {
            ctx.set(b, true);
        });
        sim.drive(a, true);
        let _ = sim.settle();
    }
}
