//! Simulation processes and the context handed to their bodies.

use crate::coverage::BranchId;
use crate::signal::{Signal, SignalId, SignalSlot, SignalValue, TypedStore};
use crate::time::SimTime;

/// Identifies a registered process within one [`Simulator`].
///
/// [`Simulator`]: crate::Simulator
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which clock edge a clocked process is sensitive to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Edge {
    /// Triggered on a 0 → 1 transition.
    Rising,
    /// Triggered on a 1 → 0 transition.
    Falling,
    /// Triggered on any change of the signal.
    Any,
}

/// A boxed process body.
pub(crate) type ProcessBody = Box<dyn FnMut(&mut ProcCtx<'_>)>;
/// A delayed signal write scheduled by [`ProcCtx::set_after`].
pub(crate) type DelayedWrite = (u64, SignalId, Box<dyn FnOnce(&mut SignalSlot)>);

pub(crate) struct ProcessSlot {
    pub name: String,
    pub body: Option<ProcessBody>,
    pub runs: u64,
    /// Combinational/Any-sensitive processes run once at initialization;
    /// edge-triggered processes wait for their first edge, like an HDL
    /// process suspended on `wait until rising_edge(clk)`.
    pub run_at_init: bool,
}

/// The execution context passed to a process body.
///
/// Provides read access to current signal values and two-phase writes that
/// take effect when the current delta cycle commits.
pub struct ProcCtx<'a> {
    pub(crate) signals: &'a mut Vec<SignalSlot>,
    pub(crate) written: &'a mut Vec<SignalId>,
    pub(crate) delayed: &'a mut Vec<DelayedWrite>,
    pub(crate) branch_hits: &'a mut Vec<u64>,
    pub(crate) time: SimTime,
    pub(crate) proc_id: ProcessId,
}

impl<'a> ProcCtx<'a> {
    /// Reads the current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulator or the type
    /// does not match — both are programming errors, not runtime conditions.
    pub fn get<T: SignalValue>(&self, sig: Signal<T>) -> T {
        let slot = &self.signals[sig.id.index()];
        slot.store
            .as_any()
            .downcast_ref::<TypedStore<T>>()
            .unwrap_or_else(|| panic!("signal {} read with wrong type", slot.name))
            .current
            .clone()
    }

    /// Schedules `value` onto `sig` for the commit phase of this delta.
    ///
    /// The written value becomes visible to other processes in the *next*
    /// delta cycle, matching HDL nonblocking-assignment semantics.
    ///
    /// # Panics
    ///
    /// Panics on a type mismatch between handle and signal.
    pub fn set<T: SignalValue>(&mut self, sig: Signal<T>, value: T) {
        let slot = &mut self.signals[sig.id.index()];
        slot.store
            .as_any_mut()
            .downcast_mut::<TypedStore<T>>()
            .unwrap_or_else(|| panic!("signal write with wrong type"))
            .pending = Some(value);
        self.written.push(sig.id);
    }

    /// Schedules `value` onto `sig` after `delay` ticks of simulated time.
    ///
    /// A zero delay behaves like [`ProcCtx::set`].
    pub fn set_after<T: SignalValue>(&mut self, sig: Signal<T>, value: T, delay: u64) {
        if delay == 0 {
            self.set(sig, value);
            return;
        }
        self.delayed.push((
            delay,
            sig.id,
            Box::new(move |slot: &mut SignalSlot| {
                if let Some(store) = slot.store.as_any_mut().downcast_mut::<TypedStore<T>>() {
                    store.pending = Some(value);
                }
            }),
        ));
    }

    /// Records a hit on a coverage branch point.
    ///
    /// Branch points are registered with
    /// [`Simulator::add_branch`](crate::Simulator::add_branch) and reported
    /// through [`ActivityCoverage`](crate::ActivityCoverage); they stand in
    /// for the line/branch code-coverage metrics the paper collects on the
    /// RTL view.
    pub fn cov(&mut self, branch: BranchId) {
        self.branch_hits[branch.index()] += 1;
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The identity of the running process.
    pub fn current_process(&self) -> ProcessId {
        self.proc_id
    }
}
