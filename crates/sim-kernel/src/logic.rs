//! Four-state logic values and bit-vector representations for tracing.

use std::fmt;

/// A single four-state logic value, as found in HDL simulators.
///
/// ```
/// use sim_kernel::Logic;
/// assert_eq!(Logic::L0 & Logic::L1, Logic::L0);
/// assert_eq!(Logic::X | Logic::L1, Logic::L1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Logic {
    /// Logic low.
    #[default]
    L0,
    /// Logic high.
    L1,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Converts a `bool` into `L0`/`L1`.
    pub const fn from_bool(b: bool) -> Self {
        if b {
            Logic::L1
        } else {
            Logic::L0
        }
    }

    /// Returns `Some(bool)` for the driven states, `None` for `X`/`Z`.
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Logic::L0 => Some(false),
            Logic::L1 => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// True when the value is `L0` or `L1`.
    pub const fn is_driven(self) -> bool {
        matches!(self, Logic::L0 | Logic::L1)
    }

    /// The VCD character for this value.
    pub const fn vcd_char(self) -> char {
        match self {
            Logic::L0 => '0',
            Logic::L1 => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (L0, _) | (_, L0) => L0,
            (L1, L1) => L1,
            _ => X,
        }
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (L1, _) | (_, L1) => L1,
            (L0, L0) => L0,
            _ => X,
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        use Logic::*;
        match self {
            L0 => L1,
            L1 => L0,
            X | Z => X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vcd_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

/// A fixed-width vector of four-state [`Logic`] values.
///
/// Bit 0 is the least-significant bit.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LogicVec {
    bits: Vec<Logic>,
}

impl LogicVec {
    /// Creates a vector of `width` bits, all `L0`.
    pub fn zeros(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::L0; width],
        }
    }

    /// Creates a vector of `width` bits, all `X`.
    pub fn unknown(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::X; width],
        }
    }

    /// Creates a vector from the low `width` bits of `value`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| Logic::from_bool(i < 64 && (value >> i) & 1 == 1))
            .collect();
        LogicVec { bits }
    }

    /// The number of bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns bit `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> Logic {
        self.bits[i]
    }

    /// Sets bit `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: usize, v: Logic) {
        self.bits[i] = v;
    }

    /// Interprets the vector as an integer, if all bits are driven.
    pub fn to_u64(&self) -> Option<u64> {
        let mut out = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) if i < 64 => out |= 1 << i,
                Some(_) => {}
                None => return None,
            }
        }
        Some(out)
    }

    /// Iterates bits LSB-first.
    pub fn iter(&self) -> impl Iterator<Item = Logic> + '_ {
        self.bits.iter().copied()
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // MSB first, like an HDL literal.
        for b in self.bits.iter().rev() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Logic> for LogicVec {
    fn from_iter<I: IntoIterator<Item = Logic>>(iter: I) -> Self {
        LogicVec {
            bits: iter.into_iter().collect(),
        }
    }
}

/// A two-state bit-vector snapshot of a signal value, used by trace sinks.
///
/// Values wider than 64 bits use additional words, LSB word first.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Bits {
    width: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates a `Bits` from explicit words (LSB word first).
    ///
    /// # Panics
    ///
    /// Panics if `words` has fewer than `width.div_ceil(64)` entries.
    pub fn new(width: usize, words: Vec<u64>) -> Self {
        assert!(
            words.len() >= width.div_ceil(64).max(1),
            "word count {} too small for width {width}",
            words.len()
        );
        let mut b = Bits { width, words };
        b.mask_top();
        b
    }

    /// A single-word value.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64, "from_u64 limited to 64 bits, got {width}");
        let mut b = Bits {
            width,
            words: vec![value],
        };
        b.mask_top();
        b
    }

    /// A one-bit value.
    pub fn from_bool(v: bool) -> Self {
        Bits::from_u64(v as u64, 1)
    }

    /// Builds from a little-endian byte slice.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let width = bytes.len() * 8;
        let mut words = vec![0u64; width.div_ceil(64).max(1)];
        for (i, byte) in bytes.iter().enumerate() {
            words[i / 8] |= (*byte as u64) << ((i % 8) * 8);
        }
        Bits { width, words }
    }

    fn mask_top(&mut self) {
        if self.width == 0 {
            for w in &mut self.words {
                *w = 0;
            }
            return;
        }
        let top_bits = self.width % 64;
        let full_words = self.width / 64;
        if top_bits != 0 {
            if let Some(w) = self.words.get_mut(full_words) {
                *w &= (1u64 << top_bits) - 1;
            }
        }
        for w in self
            .words
            .iter_mut()
            .skip(full_words + usize::from(top_bits != 0))
        {
            *w = 0;
        }
    }

    /// The declared bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns bit `i`, or `false` when `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        if i >= self.width {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The low word, convenient for values up to 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.words.first().copied().unwrap_or(0)
    }

    /// Renders the VCD binary literal (MSB first, no leading `b`).
    pub fn to_vcd_binary(&self) -> String {
        if self.width == 0 {
            return "0".to_owned();
        }
        (0..self.width)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width, self.to_vcd_binary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn logic_truth_tables() {
        use Logic::*;
        assert_eq!(L0 & X, L0);
        assert_eq!(L1 & X, X);
        assert_eq!(L1 | Z, L1);
        assert_eq!(L0 | Z, X);
        assert_eq!(!X, X);
        assert_eq!(!Z, X);
        assert_eq!(!L0, L1);
    }

    #[test]
    fn logic_bool_round_trip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(!Logic::Z.is_driven());
    }

    #[test]
    fn logic_vec_u64_round_trip() {
        let v = LogicVec::from_u64(0b1011, 4);
        assert_eq!(v.to_u64(), Some(0b1011));
        assert_eq!(v.to_string(), "1011");
        assert_eq!(v.width(), 4);
    }

    #[test]
    fn logic_vec_with_x_has_no_int() {
        let mut v = LogicVec::from_u64(3, 4);
        v.set_bit(2, Logic::X);
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn logic_vec_unknown_display() {
        assert_eq!(LogicVec::unknown(3).to_string(), "xxx");
    }

    #[test]
    fn bits_single_word() {
        let b = Bits::from_u64(0xA5, 8);
        assert_eq!(b.low_u64(), 0xA5);
        assert_eq!(b.to_vcd_binary(), "10100101");
        assert!(b.bit(0));
        assert!(!b.bit(1));
        assert!(!b.bit(63));
    }

    #[test]
    fn bits_masks_above_width() {
        let b = Bits::from_u64(u64::MAX, 4);
        assert_eq!(b.low_u64(), 0xF);
    }

    #[test]
    fn bits_from_bytes_multiword() {
        let bytes: Vec<u8> = (0..16).collect();
        let b = Bits::from_bytes(&bytes);
        assert_eq!(b.width(), 128);
        assert!(b.bit(8)); // byte 1 == 0x01 -> bit 8 set
        assert_eq!(b.low_u64() & 0xFFFF, 0x0100);
    }

    #[test]
    fn bits_zero_width_is_stable() {
        let b = Bits::new(0, vec![123]);
        assert_eq!(b.to_vcd_binary(), "0");
        assert_eq!(b.low_u64(), 0);
    }

    proptest! {
        #[test]
        fn prop_bits_bit_matches_u64(v: u64, width in 1usize..=64) {
            let b = Bits::from_u64(v, width);
            for i in 0..width {
                prop_assert_eq!(b.bit(i), (v >> i) & 1 == 1);
            }
        }

        #[test]
        fn prop_logicvec_round_trip(v: u64, width in 1usize..=64) {
            let masked = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            let lv = LogicVec::from_u64(v, width);
            prop_assert_eq!(lv.to_u64(), Some(masked));
        }

        #[test]
        fn prop_bits_from_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 1..40)) {
            let b = Bits::from_bytes(&bytes);
            for (i, byte) in bytes.iter().enumerate() {
                for bit in 0..8 {
                    prop_assert_eq!(b.bit(i * 8 + bit), (byte >> bit) & 1 == 1);
                }
            }
        }

        #[test]
        fn prop_logic_demorgan(a in 0usize..4, b in 0usize..4) {
            let l = [Logic::L0, Logic::L1, Logic::X, Logic::Z];
            let (a, b) = (l[a], l[b]);
            // De Morgan holds in four-state logic up to X-collapse:
            // !(a & b) and (!a | !b) must agree whenever both are driven.
            let lhs = !(a & b);
            let rhs = !a | !b;
            if lhs.is_driven() && rhs.is_driven() {
                prop_assert_eq!(lhs, rhs);
            }
        }
    }
}
