//! Process-activity and branch coverage.
//!
//! The paper collects line/branch/statement code coverage on the RTL view
//! (and notes no such tool exists for the SystemC BCA view). In this
//! reproduction, the equivalent structural metric is *process activity*
//! (which registered processes ever executed) plus *branch points*
//! (explicitly instrumented decision arms inside process bodies). The BCA
//! view does not run on the kernel, so — exactly as in the paper — the
//! metric only exists for the RTL view.

use std::fmt;

/// Identifies a registered branch point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BranchId(pub(crate) u32);

impl BranchId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Activity of a single process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessActivity {
    /// The registered process name.
    pub name: String,
    /// How many times the body executed.
    pub runs: u64,
}

/// A named branch point with its hit count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BranchActivity {
    /// `"process/branch"` label.
    pub name: String,
    /// How many times [`ProcCtx::cov`](crate::ProcCtx::cov) was called on it.
    pub hits: u64,
}

/// A structural-coverage report extracted from a simulator.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ActivityCoverage {
    /// Per-process run counts.
    pub processes: Vec<ProcessActivity>,
    /// Per-branch hit counts.
    pub branches: Vec<BranchActivity>,
}

impl ActivityCoverage {
    /// Fraction of processes that executed at least once, in `[0, 1]`.
    ///
    /// Returns 1.0 for an empty design (vacuously covered).
    pub fn process_coverage(&self) -> f64 {
        ratio(
            self.processes.iter().filter(|p| p.runs > 0).count(),
            self.processes.len(),
        )
    }

    /// Fraction of branch points hit at least once, in `[0, 1]`.
    pub fn branch_coverage(&self) -> f64 {
        ratio(
            self.branches.iter().filter(|b| b.hits > 0).count(),
            self.branches.len(),
        )
    }

    /// Branch points that never executed — the "unjustified" residue the
    /// paper requires to be explained before sign-off.
    pub fn missed_branches(&self) -> impl Iterator<Item = &BranchActivity> {
        self.branches.iter().filter(|b| b.hits == 0)
    }

    /// Branch points that executed at least once.
    pub fn hit_branches(&self) -> impl Iterator<Item = &BranchActivity> {
        self.branches.iter().filter(|b| b.hits > 0)
    }

    /// Looks a branch point up by its registered `"process/branch"` label
    /// (waiver validation resolves every cited branch through this).
    pub fn branch(&self, name: &str) -> Option<&BranchActivity> {
        self.branches.iter().find(|b| b.name == name)
    }

    /// Merges another report (e.g. from another test run) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two reports come from differently-shaped designs.
    pub fn merge(&mut self, other: &ActivityCoverage) {
        assert_eq!(
            self.processes.len(),
            other.processes.len(),
            "cannot merge coverage of different designs"
        );
        assert_eq!(self.branches.len(), other.branches.len());
        for (a, b) in self.processes.iter_mut().zip(&other.processes) {
            a.runs += b.runs;
        }
        for (a, b) in self.branches.iter_mut().zip(&other.branches) {
            a.hits += b.hits;
        }
    }
}

impl fmt::Display for ActivityCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "process coverage {:5.1}%  branch coverage {:5.1}%",
            self.process_coverage() * 100.0,
            self.branch_coverage() * 100.0
        )?;
        for b in self.missed_branches() {
            writeln!(f, "  MISSED {}", b.name)?;
        }
        Ok(())
    }
}

fn ratio(hit: usize, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ActivityCoverage {
        ActivityCoverage {
            processes: vec![
                ProcessActivity {
                    name: "a".into(),
                    runs: 3,
                },
                ProcessActivity {
                    name: "b".into(),
                    runs: 0,
                },
            ],
            branches: vec![
                BranchActivity {
                    name: "a/hit".into(),
                    hits: 2,
                },
                BranchActivity {
                    name: "a/miss".into(),
                    hits: 0,
                },
                BranchActivity {
                    name: "b/x".into(),
                    hits: 1,
                },
            ],
        }
    }

    #[test]
    fn coverage_fractions() {
        let c = sample();
        assert!((c.process_coverage() - 0.5).abs() < 1e-12);
        assert!((c.branch_coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_design_is_fully_covered() {
        let c = ActivityCoverage::default();
        assert_eq!(c.process_coverage(), 1.0);
        assert_eq!(c.branch_coverage(), 1.0);
    }

    #[test]
    fn missed_branches_lists_only_zeroes() {
        let c = sample();
        let missed: Vec<_> = c.missed_branches().map(|b| b.name.as_str()).collect();
        assert_eq!(missed, ["a/miss"]);
    }

    #[test]
    fn hit_branches_and_lookup_partition_the_report() {
        let c = sample();
        let hit: Vec<_> = c.hit_branches().map(|b| b.name.as_str()).collect();
        assert_eq!(hit, ["a/hit", "b/x"]);
        assert_eq!(c.branch("a/miss").map(|b| b.hits), Some(0));
        assert_eq!(c.branch("b/x").map(|b| b.hits), Some(1));
        assert!(c.branch("missing").is_none());
        assert_eq!(hit.len() + c.missed_branches().count(), c.branches.len());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.processes[0].runs, 6);
        assert_eq!(a.branches[2].hits, 2);
        assert!((a.branch_coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different designs")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = sample();
        let b = ActivityCoverage::default();
        a.merge(&b);
    }

    #[test]
    fn display_mentions_missed() {
        let text = sample().to_string();
        assert!(text.contains("MISSED a/miss"));
        assert!(text.contains("process coverage"));
    }
}
