//! Waveform trace sinks.

use crate::logic::Bits;
use crate::signal::SignalId;
use crate::time::SimTime;

/// A single recorded value change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChangeRecord {
    /// When the change committed.
    pub time: SimTime,
    /// Which signal changed.
    pub signal: SignalId,
    /// The signal's registered name.
    pub name: String,
    /// The new value.
    pub value: Bits,
}

/// Receives committed signal changes from the kernel.
///
/// Implementors include the in-memory [`VecTrace`] and, in the `stbus-vcd`
/// crate, a VCD file writer.
pub trait TraceSink {
    /// Called once per committed change of a traced signal.
    fn on_change(&mut self, time: SimTime, signal: SignalId, name: &str, value: &Bits);
}

/// A trace sink that stores every change in memory; useful in tests.
///
/// ```
/// use sim_kernel::{Simulator, VecTrace};
/// let mut sim = Simulator::new();
/// let s = sim.add_signal("s", 0u8);
/// sim.set_trace(VecTrace::default());
/// sim.trace_signal(s.id());
/// sim.drive(s, 5u8);
/// sim.settle().unwrap();
/// let trace: &VecTrace = sim.trace().unwrap();
/// assert_eq!(trace.records.len(), 1);
/// ```
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct VecTrace {
    /// All recorded changes, in commit order.
    pub records: Vec<ChangeRecord>,
}

impl TraceSink for VecTrace {
    fn on_change(&mut self, time: SimTime, signal: SignalId, name: &str, value: &Bits) {
        self.records.push(ChangeRecord {
            time,
            signal,
            name: name.to_owned(),
            value: value.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Changes reach the sink in commit order: monotonically non-decreasing
    /// time, and within one instant, cascaded delta-cycle commits after the
    /// driving commit that triggered them.
    #[test]
    fn vec_trace_preserves_commit_order_across_deltas_and_time() {
        use crate::scheduler::Simulator;

        let mut sim = Simulator::new();
        let clk = sim.add_signal("clk", false);
        let q = sim.add_signal("q", 0u8);
        let q2 = sim.add_signal("q2", 0u8);
        // q follows clk's rising edge; q2 follows q combinationally, so each
        // rising edge produces two commits separated by one delta cycle.
        sim.add_clocked_process("reg", clk, crate::process::Edge::Rising, move |ctx| {
            let v = ctx.get(q);
            ctx.set(q, v.wrapping_add(1));
        });
        sim.add_comb_process("follow", &[q.id()], move |ctx| {
            let v = ctx.get(q);
            ctx.set(q2, v);
        });
        sim.set_trace(VecTrace::default());
        sim.trace_all();
        sim.add_clock(clk, 5).unwrap();
        sim.run_until(SimTime::from_ticks(30)).unwrap();

        let trace: &VecTrace = sim.trace().unwrap();
        assert!(!trace.records.is_empty());
        for pair in trace.records.windows(2) {
            assert!(
                pair[0].time <= pair[1].time,
                "records out of time order: {pair:?}"
            );
        }
        // At each rising edge the clk commit precedes q, which precedes its
        // delta-cascaded follower q2 — all at the same instant.
        let rising: Vec<&[ChangeRecord]> =
            trace.records.split_inclusive(|r| r.name == "q2").collect();
        let full_edges = rising
            .iter()
            .filter(|chunk| chunk.iter().any(|r| r.name == "q"))
            .count();
        assert!(full_edges >= 2, "expected several rising edges");
        for chunk in rising {
            let names: Vec<&str> = chunk.iter().map(|r| r.name.as_str()).collect();
            if names.contains(&"q") {
                let iq = names.iter().position(|n| *n == "q").unwrap();
                let iq2 = names.iter().position(|n| *n == "q2").unwrap();
                assert!(iq < iq2, "q must commit before its follower q2: {names:?}");
                assert_eq!(
                    chunk[iq].time, chunk[iq2].time,
                    "delta-cascaded commits share the instant"
                );
                let v_q = &chunk[iq].value;
                let v_q2 = &chunk[iq2].value;
                assert_eq!(v_q, v_q2, "follower sees the committed value");
            }
        }
    }

    #[test]
    fn vec_trace_records_changes() {
        let mut t = VecTrace::default();
        t.on_change(
            SimTime::from_ticks(1),
            SignalId(0),
            "x",
            &Bits::from_bool(true),
        );
        t.on_change(
            SimTime::from_ticks(2),
            SignalId(0),
            "x",
            &Bits::from_bool(false),
        );
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0].name, "x");
        assert_eq!(t.records[1].time, SimTime::from_ticks(2));
    }
}
