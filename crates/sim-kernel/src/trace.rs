//! Waveform trace sinks.

use crate::logic::Bits;
use crate::signal::SignalId;
use crate::time::SimTime;

/// A single recorded value change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChangeRecord {
    /// When the change committed.
    pub time: SimTime,
    /// Which signal changed.
    pub signal: SignalId,
    /// The signal's registered name.
    pub name: String,
    /// The new value.
    pub value: Bits,
}

/// Receives committed signal changes from the kernel.
///
/// Implementors include the in-memory [`VecTrace`] and, in the `stbus-vcd`
/// crate, a VCD file writer.
pub trait TraceSink {
    /// Called once per committed change of a traced signal.
    fn on_change(&mut self, time: SimTime, signal: SignalId, name: &str, value: &Bits);
}

/// A trace sink that stores every change in memory; useful in tests.
///
/// ```
/// use sim_kernel::{Simulator, VecTrace};
/// let mut sim = Simulator::new();
/// let s = sim.add_signal("s", 0u8);
/// sim.set_trace(VecTrace::default());
/// sim.trace_signal(s.id());
/// sim.drive(s, 5u8);
/// sim.settle().unwrap();
/// let trace: &VecTrace = sim.trace().unwrap();
/// assert_eq!(trace.records.len(), 1);
/// ```
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct VecTrace {
    /// All recorded changes, in commit order.
    pub records: Vec<ChangeRecord>,
}

impl TraceSink for VecTrace {
    fn on_change(&mut self, time: SimTime, signal: SignalId, name: &str, value: &Bits) {
        self.records.push(ChangeRecord {
            time,
            signal,
            name: name.to_owned(),
            value: value.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_records_changes() {
        let mut t = VecTrace::default();
        t.on_change(SimTime::from_ticks(1), SignalId(0), "x", &Bits::from_bool(true));
        t.on_change(SimTime::from_ticks(2), SignalId(0), "x", &Bits::from_bool(false));
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0].name, "x");
        assert_eq!(t.records[1].time, SimTime::from_ticks(2));
    }
}
