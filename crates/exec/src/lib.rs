//! A dependency-free job pool for embarrassingly parallel verification
//! work.
//!
//! The regression campaign is a `{configuration × test × seed}` matrix of
//! independent cells; the paper's tool "launches parallel regression
//! tests on BCA and RTL models". The build container has no crates.io
//! access, so instead of `rayon` this crate provides the minimal pieces
//! the runner needs:
//!
//! * [`ThreadPool`] — fixed worker threads pulling boxed jobs from one
//!   channel-backed queue;
//! * [`ThreadPool::map_ordered`] / [`map_ordered`] — fan a `Vec` of
//!   work items out across the pool and collect the results **in input
//!   order**, so downstream reports are byte-identical for any worker
//!   count;
//! * [`available_parallelism`] — the default worker count.
//!
//! Worker panics are caught per job and re-raised on the caller's thread
//! (lowest job index first, for determinism), so a failing cell behaves
//! exactly as it would have serially.
//!
//! ```
//! let squares = stbus_exec::map_ordered(4, (0u64..100).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The number of hardware threads available, with a floor of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "auto" (one worker
/// per hardware thread), anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        available_parallelism()
    } else {
        jobs
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of `std::thread` workers sharing one work queue.
///
/// Jobs are `FnOnce` closures submitted through [`ThreadPool::execute`];
/// each worker loops on the queue until the pool drops, at which point
/// the queue closes and every worker joins. A panicking job does not
/// kill its worker — the payload is swallowed at this level (use
/// [`ThreadPool::map_ordered`] to have job panics re-raised on the
/// caller).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The queue sender and join handles carry no printable state.
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|k| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("exec-worker-{k}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job. Jobs run in submission order *per worker pickup*,
    /// i.e. the queue is FIFO but completion order is unspecified.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs `f` over every item on the pool and returns the results in
    /// the items' original order.
    ///
    /// With a single worker the items still flow through the queue, so
    /// `jobs = 1` exercises the same code path as `jobs = N` — only the
    /// interleaving differs.
    ///
    /// # Panics
    ///
    /// If any job panicked, the panic payload with the lowest item index
    /// is re-raised here after all jobs finished.
    pub fn map_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let f = Arc::new(f);
        let (tx, rx) = channel::<(usize, std::thread::Result<R>)>();
        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.execute(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(item)));
                // The receiver only disappears if the caller itself
                // panicked; nothing useful to do with the result then.
                let _ = tx.send((index, outcome));
            });
        }
        drop(tx);
        collect_ordered(&rx, n)
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Holding the lock only for the receive keeps the queue fair.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                // A panicking job must not take the worker down with it;
                // map_ordered re-raises panics on the caller instead.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // queue closed: pool is dropping
        }
    }
}

fn collect_ordered<R>(rx: &Receiver<(usize, std::thread::Result<R>)>, n: usize) -> Vec<R> {
    let mut slots: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (index, outcome) = rx.recv().expect("one result per submitted job");
        slots[index] = Some(outcome);
    }
    let mut out = Vec::with_capacity(n);
    let mut first_panic = None;
    for slot in slots {
        match slot.expect("every slot filled") {
            Ok(value) => out.push(value),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One-shot [`ThreadPool::map_ordered`]: builds a pool of `jobs` workers
/// (`0` = auto), maps, and tears the pool down. `jobs = 1` short-circuits
/// to a plain in-place loop — byte-identical results, no threads.
pub fn map_ordered<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let jobs = resolve_jobs(jobs);
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    ThreadPool::new(jobs.min(items.len())).map_ordered(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let pool = ThreadPool::new(4);
        // Reverse sleep times so completion order opposes input order.
        let items: Vec<u64> = (0..32).collect();
        let out = pool.map_ordered(items, |x| {
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            x * 2
        });
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let items: Vec<u64> = (0..50).collect();
        let serial = map_ordered(1, items.clone(), |x| x * x + 1);
        let parallel = map_ordered(4, items, |x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn executes_every_job_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins the workers, draining the queue first.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn job_panic_is_reraised_lowest_index_first() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_ordered(vec![0u64, 1, 2, 3], |x| {
                if x % 2 == 1 {
                    panic!("boom {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("a job panicked");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "boom 1");
        // The pool survives a panicking batch.
        assert_eq!(pool.map_ordered(vec![5u64], |x| x), vec![5]);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert_eq!(resolve_jobs(0), available_parallelism());
        assert_eq!(resolve_jobs(3), 3);
        assert!(available_parallelism() >= 1);
        // map_ordered accepts 0 and still produces ordered output.
        let out = map_ordered(0, vec![1u64, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = map_ordered(4, Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn free_map_ordered_reraises_the_lowest_index_panic() {
        // The free function must behave exactly like the pool method:
        // every job finishes, then the panic with the lowest item index
        // is re-raised on the caller — independent of completion order.
        let result = catch_unwind(AssertUnwindSafe(|| {
            map_ordered(4, (0u64..16).collect(), |x| {
                if x == 11 || x == 3 {
                    // The higher index panics first.
                    std::thread::sleep(std::time::Duration::from_micros(if x == 3 {
                        2000
                    } else {
                        0
                    }));
                    panic!("cell {x} failed");
                }
                x
            })
        }));
        let payload = result.expect_err("two jobs panicked");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "cell 3 failed");
    }

    #[test]
    fn single_job_runs_inline_on_the_caller_thread() {
        // `jobs = 1` must short-circuit to a plain loop: same thread, no
        // pool. The campaign runners rely on this for `--jobs 1` being a
        // true serial baseline.
        let caller = std::thread::current().id();
        let threads = map_ordered(1, vec![0u64, 1, 2], move |_| std::thread::current().id());
        assert!(threads.iter().all(|&id| id == caller));
        // A single item short-circuits too, regardless of the job count.
        let one = map_ordered(8, vec![7u64], move |_| std::thread::current().id());
        assert_eq!(one, vec![caller]);
    }

    #[test]
    fn zero_jobs_auto_detect_matches_serial_results() {
        // `0` resolves to one worker per hardware thread; whatever that
        // number is on the host, the ordered results must equal the
        // serial run's.
        let items: Vec<u64> = (0..64).collect();
        let serial = map_ordered(1, items.clone(), |x| x.wrapping_mul(x) ^ 0x5a);
        let auto = map_ordered(0, items, |x| x.wrapping_mul(x) ^ 0x5a);
        assert_eq!(serial, auto);
    }
}
