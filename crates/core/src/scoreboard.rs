//! The scoreboard: end-to-end data-integrity checking.
//!
//! "Automatic Check on data integrity: the DUT outputs' data correspond to
//! the inputs' one, with respect to the specifications" (paper §4). The
//! scoreboard correlates request packets observed at initiator ports with
//! their appearance at target ports (routing and payload integrity),
//! maintains a reference memory in target-commit order, and checks every
//! data-bearing response against it.

use crate::memory::SparseMemory;
use crate::monitor::MonitorEvent;
use crate::record::PortId;
use stbus_protocol::packet::{PacketParams, RequestPacket};
use stbus_protocol::NodeConfig;
use std::collections::VecDeque;

/// One data-integrity failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScoreboardError {
    /// When it was detected.
    pub cycle: u64,
    /// Where.
    pub port: PortId,
    /// Details.
    pub message: String,
}

impl std::fmt::Display for ScoreboardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[scoreboard @ {} cycle {}] {}",
            self.port, self.cycle, self.message
        )
    }
}

#[derive(Debug, Clone)]
struct SentPacket {
    packet: RequestPacket,
    target: Option<usize>,
}

#[derive(Debug, Clone)]
struct ExpectedResponse {
    tid: u8,
    /// `Some(data)` for data-bearing responses, `None` for pure acks.
    data: Option<Vec<u8>>,
}

/// The reference-model scoreboard.
#[derive(Debug)]
pub struct Scoreboard {
    params: PacketParams,
    config: NodeConfig,
    reference: SparseMemory,
    /// Per initiator: packets seen at the initiator port, awaiting their
    /// appearance at a target port.
    sent: Vec<VecDeque<SentPacket>>,
    /// Per (initiator, target): expected responses in per-target order.
    expected: Vec<Vec<VecDeque<ExpectedResponse>>>,
    /// Per initiator: outstanding error expectations (unmapped requests).
    expected_errors: Vec<VecDeque<u8>>,
    errors: Vec<ScoreboardError>,
    checks: u64,
}

impl Scoreboard {
    /// A scoreboard for one configuration.
    pub fn new(config: &NodeConfig) -> Self {
        Scoreboard {
            params: PacketParams {
                bus_bytes: config.bus_bytes,
                protocol: config.protocol,
                endianness: config.endianness,
            },
            reference: SparseMemory::new(),
            sent: vec![VecDeque::new(); config.n_initiators],
            expected: vec![vec![VecDeque::new(); config.n_targets]; config.n_initiators],
            expected_errors: vec![VecDeque::new(); config.n_initiators],
            errors: Vec::new(),
            checks: 0,
            config: config.clone(),
        }
    }

    /// Failures so far.
    pub fn errors(&self) -> &[ScoreboardError] {
        &self.errors
    }

    /// Successful comparisons so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// True when no mismatch was found.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }

    /// The reference memory (useful for directed tests).
    pub fn reference(&self) -> &SparseMemory {
        &self.reference
    }

    fn err(&mut self, cycle: u64, port: PortId, message: String) {
        if self.errors.len() < 200 {
            self.errors.push(ScoreboardError {
                cycle,
                port,
                message,
            });
        }
    }

    /// Digests one monitor event.
    pub fn observe(&mut self, event: &MonitorEvent) {
        match event {
            MonitorEvent::RequestPacket {
                port: PortId::Initiator(i),
                packet,
                cycle,
                ..
            } => {
                let target = self
                    .config
                    .address_map
                    .decode(packet.addr())
                    .map(|t| t.0 as usize);
                if target.is_none() {
                    // Unmapped: the node itself must answer with an error.
                    self.expected_errors[*i].push_back(packet.tid().0);
                } else {
                    self.sent[*i].push_back(SentPacket {
                        packet: packet.clone(),
                        target,
                    });
                }
                let _ = cycle;
            }
            MonitorEvent::RequestPacket {
                port: PortId::Target(t),
                packet,
                cycle,
                ..
            } => self.target_request(*t, packet, *cycle),
            MonitorEvent::ResponsePacket {
                port: PortId::Initiator(i),
                packet,
                cycle,
                responder,
                ..
            } => self.initiator_response(*i, packet, *responder, *cycle),
            _ => {}
        }
    }

    /// A request packet arrived at a target port: routing + payload
    /// integrity, then commit to the reference model.
    fn target_request(&mut self, t: usize, observed: &RequestPacket, cycle: u64) {
        let src = observed.src().0 as usize;
        let port = PortId::Target(t);
        if src >= self.sent.len() {
            self.err(
                cycle,
                port,
                format!("packet from unknown source {}", observed.src()),
            );
            return;
        }
        let pos = self.sent[src].iter().position(|s| {
            s.packet.tid() == observed.tid()
                && s.packet.addr() == observed.addr()
                && s.packet.opcode() == observed.opcode()
        });
        let Some(pos) = pos else {
            self.err(
                cycle,
                port,
                format!(
                    "no pending request matches {} {:#x} tid {} from {}",
                    observed.opcode(),
                    observed.addr(),
                    observed.tid(),
                    observed.src()
                ),
            );
            return;
        };
        let sent = self.sent[src].remove(pos).expect("position valid");

        // Routing check.
        if sent.target != Some(t) {
            self.err(
                cycle,
                port,
                format!(
                    "packet for target {:?} delivered to target {t}",
                    sent.target
                ),
            );
        } else {
            self.checks += 1;
        }
        // Cell-level integrity: payload and byte enables must survive the
        // node unchanged.
        let intent = &sent.packet;
        if intent.payload(self.params) != observed.payload(self.params) {
            self.err(cycle, port, "payload corrupted between ports".to_owned());
        } else {
            self.checks += 1;
        }
        let be_intent: Vec<u32> = intent.cells().iter().map(|c| c.be).collect();
        let be_observed: Vec<u32> = observed.cells().iter().map(|c| c.be).collect();
        if be_intent != be_observed {
            self.err(
                cycle,
                port,
                format!("byte enables altered: {be_intent:?} -> {be_observed:?}"),
            );
        } else {
            self.checks += 1;
        }

        // Commit to the reference model in target order, using the
        // *intended* packet (so a node that corrupts data/enables diverges
        // from the reference and is caught on readback).
        let opcode = intent.opcode();
        let old = self.reference.read(intent.addr(), opcode.size().bytes());
        if opcode.writes_memory() {
            let bus = self.params.bus_bytes as u64;
            for cell in intent.cells() {
                if cell.be == 0 {
                    continue;
                }
                let base = cell.addr & !(bus - 1);
                let lanes = cell.data.lanes(self.params.bus_bytes).to_vec();
                self.reference.write_masked(base, &lanes, cell.be);
            }
        }
        let data = opcode.has_response_data().then_some(old);
        self.expected[src][t].push_back(ExpectedResponse {
            tid: intent.tid().0,
            data,
        });
    }

    /// A response packet completed at an initiator port.
    fn initiator_response(
        &mut self,
        i: usize,
        packet: &stbus_protocol::ResponsePacket,
        responder: Option<usize>,
        cycle: u64,
    ) {
        let port = PortId::Initiator(i);
        match responder {
            None => {
                // Internal error response: must match an unmapped request.
                if packet.is_error() {
                    if let Some(pos) = self.expected_errors[i]
                        .iter()
                        .position(|tid| *tid == packet.tid().0)
                    {
                        self.expected_errors[i].remove(pos);
                        self.checks += 1;
                    } else if self.expected_errors[i].pop_front().is_some() {
                        self.checks += 1; // ordered protocols carry tid 0
                    } else {
                        self.err(
                            cycle,
                            port,
                            "error response with no unmapped request".into(),
                        );
                    }
                } else {
                    self.err(cycle, port, "internal response without error flag".into());
                }
            }
            Some(t) => {
                let Some(exp) = self.expected[i][t].pop_front() else {
                    self.err(
                        cycle,
                        port,
                        format!("response from target {t} with nothing expected"),
                    );
                    return;
                };
                if packet.is_error() {
                    self.err(
                        cycle,
                        port,
                        format!("unexpected error response from target {t}"),
                    );
                    return;
                }
                if self.config.protocol.allows_out_of_order() && exp.tid != packet.tid().0 {
                    self.err(
                        cycle,
                        port,
                        format!("response tid {} expected {}", packet.tid(), exp.tid),
                    );
                }
                if let Some(expected_data) = exp.data {
                    let got = packet.payload(self.params.bus_bytes, expected_data.len());
                    if got != expected_data {
                        self.err(
                            cycle,
                            port,
                            format!("data mismatch: expected {expected_data:02x?}, got {got:02x?}"),
                        );
                    } else {
                        self.checks += 1;
                    }
                } else {
                    self.checks += 1;
                }
            }
        }
    }

    /// Pending work (unmatched requests/responses) — nonzero at the end of
    /// a run means the drain phase was too short.
    pub fn outstanding(&self) -> usize {
        self.sent.iter().map(VecDeque::len).sum::<usize>()
            + self
                .expected
                .iter()
                .flat_map(|v| v.iter())
                .map(VecDeque::len)
                .sum::<usize>()
            + self
                .expected_errors
                .iter()
                .map(VecDeque::len)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::{InitiatorId, Opcode, ResponsePacket, TransactionId, TransferSize};

    fn cfg() -> NodeConfig {
        NodeConfig::reference()
    }

    fn params(c: &NodeConfig) -> PacketParams {
        PacketParams {
            bus_bytes: c.bus_bytes,
            protocol: c.protocol,
            endianness: c.endianness,
        }
    }

    fn store(c: &NodeConfig, addr: u64, payload: &[u8], tid: u8) -> RequestPacket {
        RequestPacket::build(
            Opcode::store(TransferSize::from_bytes(payload.len()).unwrap()),
            addr,
            payload,
            params(c),
            InitiatorId(0),
            TransactionId(tid),
            0,
            false,
        )
        .unwrap()
    }

    fn load(c: &NodeConfig, addr: u64, size: TransferSize, tid: u8) -> RequestPacket {
        RequestPacket::build(
            Opcode::load(size),
            addr,
            &[],
            params(c),
            InitiatorId(0),
            TransactionId(tid),
            0,
            false,
        )
        .unwrap()
    }

    fn send_through(sb: &mut Scoreboard, pkt: &RequestPacket, t: usize, cycle: u64) {
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Initiator(pkt.src().0 as usize),
            cycle,
            start: cycle,
            packet: pkt.clone(),
        });
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Target(t),
            cycle: cycle + 1,
            start: cycle + 1,
            packet: pkt.clone(),
        });
    }

    #[test]
    fn write_read_round_trip_passes() {
        let c = cfg();
        let mut sb = Scoreboard::new(&c);
        let w = store(&c, 0x100, &[9, 8, 7, 6, 5, 4, 3, 2], 1);
        send_through(&mut sb, &w, 0, 1);
        let r = load(&c, 0x100, TransferSize::B8, 2);
        send_through(&mut sb, &r, 0, 5);
        // The store ack.
        sb.observe(&MonitorEvent::ResponsePacket {
            port: PortId::Initiator(0),
            cycle: 7,
            start: 7,
            packet: ResponsePacket::ok_ack(InitiatorId(0), TransactionId(1), 1),
            responder: Some(0),
        });
        // The load response with the written data.
        sb.observe(&MonitorEvent::ResponsePacket {
            port: PortId::Initiator(0),
            cycle: 9,
            start: 9,
            packet: ResponsePacket::ok_with_data(
                InitiatorId(0),
                TransactionId(2),
                &[9, 8, 7, 6, 5, 4, 3, 2],
                c.bus_bytes,
                1,
            ),
            responder: Some(0),
        });
        assert!(sb.passed(), "{:?}", sb.errors());
        assert_eq!(sb.outstanding(), 0);
        assert!(sb.checks() >= 6);
    }

    #[test]
    fn corrupted_load_data_is_caught() {
        let c = cfg();
        let mut sb = Scoreboard::new(&c);
        let w = store(&c, 0x100, &[1; 8], 1);
        send_through(&mut sb, &w, 0, 1);
        sb.observe(&MonitorEvent::ResponsePacket {
            port: PortId::Initiator(0),
            cycle: 3,
            start: 3,
            packet: ResponsePacket::ok_ack(InitiatorId(0), TransactionId(1), 1),
            responder: Some(0),
        });
        let r = load(&c, 0x100, TransferSize::B8, 2);
        send_through(&mut sb, &r, 0, 5);
        sb.observe(&MonitorEvent::ResponsePacket {
            port: PortId::Initiator(0),
            cycle: 9,
            start: 9,
            packet: ResponsePacket::ok_with_data(
                InitiatorId(0),
                TransactionId(2),
                &[0xFF; 8], // wrong
                c.bus_bytes,
                1,
            ),
            responder: Some(0),
        });
        assert!(!sb.passed());
        assert!(sb.errors()[0].message.contains("data mismatch"));
    }

    #[test]
    fn altered_byte_enables_are_caught() {
        let c = cfg();
        let mut sb = Scoreboard::new(&c);
        let w = store(&c, 0x102, &[0xAB, 0xCD], 1);
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Initiator(0),
            cycle: 1,
            start: 1,
            packet: w.clone(),
        });
        // The node widened the byte enables (bug B1).
        let mut cells = w.cells().to_vec();
        cells[0].be = c.full_be();
        let widened = RequestPacket::from_cells(cells);
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Target(0),
            cycle: 2,
            start: 2,
            packet: widened,
        });
        assert!(!sb.passed());
        assert!(sb.errors()[0].message.contains("byte enables"));
    }

    #[test]
    fn misrouted_packet_is_caught() {
        let c = cfg();
        let mut sb = Scoreboard::new(&c);
        let w = store(&c, 0x100, &[1; 8], 1); // decodes to target 0
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Initiator(0),
            cycle: 1,
            start: 1,
            packet: w.clone(),
        });
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Target(1), // wrong target!
            cycle: 2,
            start: 2,
            packet: w,
        });
        assert!(!sb.passed());
        assert!(sb.errors()[0].message.contains("delivered to target 1"));
    }

    #[test]
    fn unmapped_requests_expect_error_responses() {
        let c = cfg();
        let mut sb = Scoreboard::new(&c);
        let unmapped = c.address_map.unmapped_address().unwrap();
        let r = load(&c, unmapped, TransferSize::B8, 5);
        sb.observe(&MonitorEvent::RequestPacket {
            port: PortId::Initiator(0),
            cycle: 1,
            start: 1,
            packet: r,
        });
        assert_eq!(sb.outstanding(), 1);
        sb.observe(&MonitorEvent::ResponsePacket {
            port: PortId::Initiator(0),
            cycle: 4,
            start: 4,
            packet: ResponsePacket::error(InitiatorId(0), TransactionId(5), 1),
            responder: None,
        });
        assert!(sb.passed(), "{:?}", sb.errors());
        assert_eq!(sb.outstanding(), 0);
    }

    #[test]
    fn spurious_internal_ok_response_is_error() {
        let c = cfg();
        let mut sb = Scoreboard::new(&c);
        sb.observe(&MonitorEvent::ResponsePacket {
            port: PortId::Initiator(0),
            cycle: 4,
            start: 4,
            packet: ResponsePacket::ok_ack(InitiatorId(0), TransactionId(0), 1),
            responder: None,
        });
        assert!(!sb.passed());
    }
}
