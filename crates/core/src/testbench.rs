//! The testbench: the paper's Figure 2/6 architecture around a pluggable
//! DUT view.

use crate::checker::{CheckerReport, ProtocolChecker};
use crate::constraint::ConstraintModel;
use crate::coverage::{CoverageReport, FunctionalCoverage};
use crate::harness::{InitiatorBfm, InitiatorStats};
use crate::monitor::{MonitorEvent, PortMonitor};
use crate::record::{CycleRecord, PortId};
use crate::scoreboard::{Scoreboard, ScoreboardError};
use crate::target::{TargetBfm, TargetProfile};
use crate::vcd_dump::VcdDump;
use stbus_protocol::{DutInputs, DutView, NodeConfig, ProgCommand, ViewKind};
use std::collections::VecDeque;
use std::time::Instant;
use telemetry::{Json, Telemetry};

/// Knobs of a testbench run.
#[derive(Clone, Debug)]
pub struct TestbenchOptions {
    /// Capture a VCD dump of the run (needed for STBA comparison).
    pub capture_vcd: bool,
    /// Hard cycle limit including the drain phase.
    pub max_cycles: u64,
    /// Starvation-watchdog threshold override.
    pub starvation_limit: Option<u64>,
    /// Run the protocol checkers and scoreboard (default). Disabling
    /// them exists for the environment-overhead ablation only — a run
    /// without checks proves nothing.
    pub checks: bool,
    /// Collect functional coverage (default).
    pub collect_coverage: bool,
    /// Telemetry handle; every run is wrapped in a `tb.run` span and
    /// feeds the `tb.*` metrics. Disabled (zero-cost) by default.
    pub telemetry: Telemetry,
}

impl Default for TestbenchOptions {
    fn default() -> Self {
        TestbenchOptions {
            capture_vcd: false,
            max_cycles: 50_000,
            starvation_limit: None,
            checks: true,
            collect_coverage: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One of the (generic, configuration-independent) test cases:
/// constraint models for every port plus an optional programming-port
/// script. Directed tests usually build the models by lowering a
/// [`crate::TrafficProfile`] through
/// [`crate::TrafficProfile::to_model`].
#[derive(Clone, Debug)]
pub struct TestSpec {
    /// Test name (stable across configurations; used in reports).
    pub name: String,
    /// What the test exercises.
    pub description: String,
    /// Per-initiator constraint models (cycled when the node has more
    /// ports).
    pub profiles: Vec<ConstraintModel>,
    /// Per-target personalities (cycled likewise).
    pub target_profiles: Vec<TargetProfile>,
    /// `(cycle, priorities)` writes to the programming port.
    pub prog_schedule: Vec<(u64, Vec<u8>)>,
}

impl TestSpec {
    /// The constraint model used for initiator `i` under `config`.
    pub fn profile_for(&self, i: usize) -> &ConstraintModel {
        &self.profiles[i % self.profiles.len()]
    }

    /// The personality of target `t`.
    pub fn target_profile_for(&self, t: usize) -> TargetProfile {
        self.target_profiles[t % self.target_profiles.len()]
    }
}

/// Everything one `{config, view, test, seed}` run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The test name.
    pub test: String,
    /// The seed.
    pub seed: u64,
    /// Which design view ran.
    pub view: ViewKind,
    /// Cycles simulated (including drain).
    pub cycles: u64,
    /// Protocol-checker outcome.
    pub checker: CheckerReport,
    /// Scoreboard failures.
    pub scoreboard_errors: Vec<ScoreboardError>,
    /// Scoreboard comparisons that passed.
    pub scoreboard_checks: u64,
    /// Functional coverage of this run.
    pub coverage: CoverageReport,
    /// Per-initiator traffic statistics.
    pub stats: Vec<InitiatorStats>,
    /// Harness-level anomalies (unexpected responses).
    pub anomalies: Vec<String>,
    /// True when every harness drained before the cycle limit.
    pub completed: bool,
    /// Transactions completed across all initiators.
    pub transactions: u64,
    /// The VCD text, when capture was requested.
    pub vcd: Option<String>,
}

impl RunResult {
    /// The paper's pass criterion: all checkers green, scoreboard green,
    /// no anomalies, and the run drained.
    pub fn passed(&self) -> bool {
        self.checker.passed()
            && self.scoreboard_errors.is_empty()
            && self.anomalies.is_empty()
            && self.completed
    }

    /// A one-line summary for regression logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<24} seed {:<4} {:<4} {:>6} cycles {:>5} tx  checks {:>6}  cov {:5.1}%  {}",
            self.test,
            self.seed,
            self.view.to_string(),
            self.cycles,
            self.transactions,
            self.checker.total_checks() + self.scoreboard_checks,
            self.coverage.coverage() * 100.0,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// The common testbench: build once per configuration, then run any test
/// on any DUT view.
#[derive(Clone, Debug)]
pub struct Testbench {
    config: NodeConfig,
    options: TestbenchOptions,
}

impl Testbench {
    /// A testbench for one node configuration.
    pub fn new(config: NodeConfig, options: TestbenchOptions) -> Self {
        Testbench { config, options }
    }

    /// The configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Runs `spec` with `seed` against a DUT view.
    ///
    /// The DUT is reset first; the run continues until all scheduled
    /// traffic drains (or the cycle limit is hit).
    ///
    /// # Panics
    ///
    /// Panics if the DUT's configuration disagrees with the testbench's.
    pub fn run(&self, dut: &mut dyn DutView, spec: &TestSpec, seed: u64) -> RunResult {
        assert_eq!(
            dut.config().n_initiators,
            self.config.n_initiators,
            "DUT/testbench configuration mismatch"
        );
        assert_eq!(dut.config().n_targets, self.config.n_targets);
        let cfg = &self.config;
        let tel = &self.options.telemetry;
        let started = Instant::now();
        // Phase attribution (drive / settle / check / vcd) costs four
        // clock reads per cycle, so it is gated on telemetry being live:
        // a disabled handle keeps the hot loop clock-free.
        let profiling = tel.is_enabled();
        let mut phase_drive = std::time::Duration::ZERO;
        let mut phase_settle = std::time::Duration::ZERO;
        let mut phase_check = std::time::Duration::ZERO;
        let mut phase_vcd = std::time::Duration::ZERO;
        // The eval sub-phase (model evaluation inside `settle`) is timed
        // by the view itself, where the kernel hands control to the model.
        dut.set_phase_timing(profiling);
        let eval_us_base = dut.phase_eval_us();
        let span = tel
            .span("tb.run")
            .field("test", Json::from(spec.name.as_str()))
            .field("seed", Json::from(seed))
            .field("view", Json::from(dut.view_kind().to_string()));
        dut.reset();

        let mut harnesses: Vec<InitiatorBfm> = (0..cfg.n_initiators)
            .map(|i| {
                let model = spec.profile_for(i);
                InitiatorBfm::new(
                    cfg,
                    i,
                    model.solve(cfg, i, seed),
                    seed ^ 0x5EED ^ i as u64,
                    model.r_gnt_throttle_percent,
                )
            })
            .collect();
        let mut targets: Vec<TargetBfm> = (0..cfg.n_targets)
            .map(|t| TargetBfm::new(cfg, t, spec.target_profile_for(t), seed ^ 0x7A67 ^ t as u64))
            .collect();
        let mut monitors: Vec<PortMonitor> = (0..cfg.n_initiators)
            .map(PortId::Initiator)
            .chain((0..cfg.n_targets).map(PortId::Target))
            .map(PortMonitor::new)
            .collect();
        let mut checker = ProtocolChecker::new(cfg);
        if let Some(limit) = self.options.starvation_limit {
            checker.set_starvation_limit(limit);
        }
        let mut scoreboard = Scoreboard::new(cfg);
        let mut coverage = FunctionalCoverage::new(cfg);
        let mut vcd = self.options.capture_vcd.then(|| VcdDump::new(cfg));

        // Out-of-order and outstanding tracking for the coverage features.
        let mut issue_order: Vec<VecDeque<Option<usize>>> = vec![VecDeque::new(); cfg.n_initiators];
        let mut prog_iter = spec.prog_schedule.iter().peekable();
        let mut events: Vec<MonitorEvent> = Vec::new();

        let mut cycle = 0u64;
        let mut completed = false;
        while cycle < self.options.max_cycles {
            let mark = profiling.then(Instant::now);
            let mut inputs = DutInputs::idle(cfg);
            for (i, h) in harnesses.iter_mut().enumerate() {
                inputs.initiator[i] = h.drive(cycle);
            }
            for (t, tg) in targets.iter_mut().enumerate() {
                inputs.target[t] = tg.drive(cycle);
            }
            if cfg.prog_port {
                if let Some((at, prios)) = prog_iter.peek() {
                    if *at <= cycle {
                        inputs.prog = Some(ProgCommand {
                            priorities: prios.clone(),
                        });
                        prog_iter.next();
                    }
                }
            }

            let mark = mark.map(|t| {
                let now = Instant::now();
                phase_drive += now - t;
                now
            });
            let outputs = dut.step(&inputs);
            let mark = mark.map(|t| {
                let now = Instant::now();
                phase_settle += now - t;
                now
            });
            let rec = CycleRecord {
                cycle,
                inputs,
                outputs,
            };

            for h in &mut harnesses {
                h.observe(&rec);
            }
            for tg in &mut targets {
                tg.observe(&rec);
            }
            events.clear();
            for m in &mut monitors {
                m.observe(&rec, &mut events);
            }
            if self.options.checks {
                checker.observe(&rec);
            }
            if self.options.collect_coverage {
                coverage.observe_cycle(&rec);
            }
            for e in &events {
                if self.options.checks {
                    scoreboard.observe(e);
                }
                if self.options.collect_coverage {
                    coverage.observe_event(e);
                }
                match e {
                    MonitorEvent::RequestPacket {
                        port: PortId::Initiator(i),
                        packet,
                        ..
                    } => {
                        let dest = cfg.address_map.decode(packet.addr()).map(|t| t.0 as usize);
                        issue_order[*i].push_back(dest);
                        if issue_order[*i].len() >= 2 {
                            coverage.note_outstanding_gt1();
                        }
                    }
                    MonitorEvent::ResponsePacket {
                        port: PortId::Initiator(i),
                        responder,
                        ..
                    } => {
                        if issue_order[*i].front() != Some(responder) {
                            coverage.note_out_of_order();
                        }
                        if let Some(pos) = issue_order[*i].iter().position(|d| d == responder) {
                            issue_order[*i].remove(pos);
                        } else {
                            issue_order[*i].pop_front();
                        }
                    }
                    _ => {}
                }
            }
            let mark = mark.map(|t| {
                let now = Instant::now();
                phase_check += now - t;
                now
            });
            if let Some(v) = &mut vcd {
                v.record(&rec);
            }
            if let Some(t) = mark {
                phase_vcd += t.elapsed();
            }

            cycle += 1;
            let drained = harnesses.iter().all(InitiatorBfm::done)
                && targets.iter().all(TargetBfm::drained)
                && scoreboard.outstanding() == 0;
            if drained {
                completed = true;
                break;
            }
        }

        let transactions = harnesses.iter().map(|h| h.stats().completed).sum();
        let vcd_text = vcd.map(|v| {
            let t = profiling.then(Instant::now);
            let text = v.finish();
            if let Some(t) = t {
                phase_vcd += t.elapsed();
            }
            text
        });
        let result = RunResult {
            test: spec.name.clone(),
            seed,
            view: dut.view_kind(),
            cycles: cycle,
            checker: checker.into_report(),
            scoreboard_errors: scoreboard.errors().to_vec(),
            scoreboard_checks: scoreboard.checks(),
            coverage: coverage.report(),
            stats: harnesses.iter().map(|h| h.stats()).collect(),
            anomalies: harnesses
                .iter()
                .flat_map(|h| h.anomalies().iter().cloned())
                .collect(),
            completed,
            transactions,
            vcd: vcd_text,
        };

        let wall = started.elapsed();
        let cycles_per_sec = result.cycles as f64 / wall.as_secs_f64().max(1e-9);
        let metrics = tel.metrics();
        metrics.counter("tb.runs").inc();
        metrics.counter("tb.cycles").add(result.cycles);
        metrics.counter("tb.transactions").add(result.transactions);
        metrics
            .counter("tb.checker_checks")
            .add(result.checker.total_checks());
        metrics
            .counter("tb.checker_violations")
            .add(result.checker.violations.len() as u64);
        metrics
            .counter("tb.scoreboard_checks")
            .add(result.scoreboard_checks);
        metrics
            .counter("tb.scoreboard_errors")
            .add(result.scoreboard_errors.len() as u64);
        if !result.passed() {
            metrics.counter("tb.failures").inc();
        }
        span.end([
            ("cycles", Json::from(result.cycles)),
            ("transactions", Json::from(result.transactions)),
            ("cycles_per_sec", Json::from(cycles_per_sec)),
            ("checker_checks", Json::from(result.checker.total_checks())),
            (
                "checker_violations",
                Json::from(result.checker.violations.len()),
            ),
            ("scoreboard_checks", Json::from(result.scoreboard_checks)),
            (
                "scoreboard_errors",
                Json::from(result.scoreboard_errors.len()),
            ),
            (
                "coverage_pct",
                Json::from(result.coverage.coverage() * 100.0),
            ),
            ("passed", Json::from(result.passed())),
            // Phase attribution for the span-tree profiler: these become
            // synthetic `phase:*` children of the tb.run node.
            ("phase_drive_us", Json::from(phase_drive.as_micros() as u64)),
            (
                "phase_settle_us",
                Json::from(phase_settle.as_micros() as u64),
            ),
            ("phase_check_us", Json::from(phase_check.as_micros() as u64)),
            ("phase_vcd_us", Json::from(phase_vcd.as_micros() as u64)),
            // Model evaluation proper, a sub-slice of `settle` reported by
            // the view (zero for uninstrumented views like the BCA).
            (
                "phase_eval_us",
                Json::from(dut.phase_eval_us().saturating_sub(eval_us_base)),
            ),
            (
                "checker_rules",
                Json::obj(
                    result
                        .checker
                        .checks_passed
                        .iter()
                        .map(|(rule, count)| (rule.to_string(), Json::from(*count))),
                ),
            ),
        ]);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_lib;
    use crate::views::build_view;
    use stbus_protocol::ViewKind;

    #[test]
    fn basic_test_passes_on_both_views() {
        let cfg = NodeConfig::reference();
        let tb = Testbench::new(cfg.clone(), TestbenchOptions::default());
        let spec = tests_lib::basic_read_write(20);
        for kind in [ViewKind::Rtl, ViewKind::Bca] {
            let mut dut = build_view(&cfg, kind);
            let result = tb.run(dut.as_mut(), &spec, 7);
            assert!(
                result.passed(),
                "{kind}: {:?} {:?} {:?}",
                result.checker.violations,
                result.scoreboard_errors,
                result.anomalies
            );
            assert!(result.transactions > 0);
        }
    }

    #[test]
    fn same_seed_same_stimulus_different_seed_differs() {
        let cfg = NodeConfig::reference();
        let tb = Testbench::new(cfg.clone(), TestbenchOptions::default());
        let spec = tests_lib::random_mixed(15);
        let mut a = build_view(&cfg, ViewKind::Bca);
        let mut b = build_view(&cfg, ViewKind::Bca);
        let ra = tb.run(a.as_mut(), &spec, 3);
        let rb = tb.run(b.as_mut(), &spec, 3);
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.transactions, rb.transactions);
        let rc = tb.run(a.as_mut(), &spec, 4);
        assert!(
            rc.cycles != ra.cycles || rc.transactions != ra.transactions || ra.stats != rc.stats
        );
    }

    #[test]
    fn run_emits_span_and_metrics() {
        let (sink, handle) = telemetry::MemorySink::new();
        let tel = Telemetry::builder().with_sink(Box::new(sink)).build();
        let cfg = NodeConfig::reference();
        let tb = Testbench::new(
            cfg.clone(),
            TestbenchOptions {
                telemetry: tel.clone(),
                ..TestbenchOptions::default()
            },
        );
        let spec = tests_lib::basic_read_write(10);
        let mut dut = build_view(&cfg, ViewKind::Rtl);
        dut.attach_metrics(tel.metrics());
        let result = tb.run(dut.as_mut(), &spec, 5);

        let events = handle.events();
        let end = events
            .iter()
            .find(|e| e.scope == "tb.run.end")
            .expect("span end event");
        assert_eq!(
            end.field("cycles").and_then(telemetry::Json::as_u64),
            Some(result.cycles)
        );
        assert_eq!(
            end.field("transactions").and_then(telemetry::Json::as_u64),
            Some(result.transactions)
        );
        assert!(end.field("cycles_per_sec").is_some());
        for phase in ["drive", "settle", "check", "vcd", "eval"] {
            assert!(
                end.field(&format!("phase_{phase}_us"))
                    .and_then(telemetry::Json::as_u64)
                    .is_some(),
                "phase_{phase}_us missing"
            );
        }
        assert_eq!(
            end.field("passed").and_then(telemetry::Json::as_bool),
            Some(true)
        );

        let snap = tel.metrics().snapshot();
        assert_eq!(snap.counters["tb.runs"], 1);
        assert_eq!(snap.counters["tb.cycles"], result.cycles);
        assert_eq!(snap.counters["tb.transactions"], result.transactions);
        // The RTL view runs on the instrumented kernel.
        assert!(snap.counters["kernel.delta_cycles"] > 0);
        assert!(snap.counters["kernel.process_activations"] > 0);
    }

    #[test]
    fn vcd_capture_produces_parsable_dump() {
        let cfg = NodeConfig::reference();
        let tb = Testbench::new(
            cfg.clone(),
            TestbenchOptions {
                capture_vcd: true,
                ..TestbenchOptions::default()
            },
        );
        let spec = tests_lib::basic_read_write(5);
        let mut dut = build_view(&cfg, ViewKind::Bca);
        let result = tb.run(dut.as_mut(), &spec, 1);
        let text = result.vcd.expect("captured");
        let doc = vcd::VcdDocument::parse(&text).unwrap();
        assert!(doc.end_time() > 0);
    }
}
