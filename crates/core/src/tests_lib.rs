//! The twelve generic test cases (paper §5).
//!
//! "Twelve test cases have been developed to cover the tests of all main
//! features of the node such as out of order traffic or latency based
//! arbitration. … The test cases are generic and depend on some HDL
//! parameters. They can be reused for all configurations of the Node."
//!
//! Each constructor takes an `intensity` — the per-initiator transaction
//! count — so regressions can trade runtime for depth. [`all`] returns the
//! full suite.

use crate::target::TargetProfile;
use crate::testbench::TestSpec;
use crate::traffic::{OpMix, TrafficProfile};
use stbus_protocol::TransferSize;

fn spec(name: &str, description: &str, profiles: Vec<TrafficProfile>) -> TestSpec {
    TestSpec {
        name: name.to_owned(),
        description: description.to_owned(),
        profiles,
        target_profiles: vec![TargetProfile::default()],
        prog_schedule: Vec::new(),
    }
}

/// T01 — directed-style low-rate loads and stores; the smoke test.
pub fn basic_read_write(intensity: usize) -> TestSpec {
    spec(
        "basic_read_write",
        "low-rate loads and stores across all targets",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 6,
            op_mix: OpMix::balanced(),
            ..TrafficProfile::default()
        }],
    )
}

/// T02 — every legal opcode and size, medium pressure.
pub fn random_mixed(intensity: usize) -> TestSpec {
    spec(
        "random_mixed",
        "full opcode/size mix with medium pressure",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 3,
            op_mix: OpMix::full(),
            sizes: TransferSize::ALL.to_vec(),
            ..TrafficProfile::default()
        }],
    )
}

/// T03 — the paper's out-of-order scenario: "short transactions are sent
/// by one initiator to different targets, having different speed".
pub fn out_of_order(intensity: usize) -> TestSpec {
    let mut s = spec(
        "out_of_order",
        "short transactions to fast and slow targets force out-of-order responses",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 1,
            op_mix: OpMix::loads_only(),
            sizes: vec![TransferSize::B4, TransferSize::B8],
            ..TrafficProfile::default()
        }],
    );
    s.target_profiles = vec![TargetProfile::fast(), TargetProfile::slow()];
    s
}

/// T04 — sustained saturation so latency-based arbitration has deadlines
/// to defend.
pub fn latency_stress(intensity: usize) -> TestSpec {
    spec(
        "latency_stress",
        "all initiators saturate one hot target",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            op_mix: OpMix::balanced(),
            targets: vec![stbus_protocol::TargetId(0)],
            ..TrafficProfile::default()
        }],
    )
}

/// T05 — asymmetric demand: initiator 0 hogs, the others trickle —
/// exercises bandwidth limitation.
pub fn bandwidth_share(intensity: usize) -> TestSpec {
    spec(
        "bandwidth_share",
        "one hog plus background traffic on a shared hot target",
        vec![
            TrafficProfile {
                n_transactions: intensity * 2,
                mean_gap: 0,
                targets: vec![stbus_protocol::TargetId(0)],
                ..TrafficProfile::default()
            },
            TrafficProfile {
                n_transactions: intensity / 2 + 1,
                mean_gap: 8,
                targets: vec![stbus_protocol::TargetId(0)],
                ..TrafficProfile::default()
            },
        ],
    )
}

/// T06 — equal saturation from every initiator; LRU must rotate fairly.
pub fn lru_fairness(intensity: usize) -> TestSpec {
    spec(
        "lru_fairness",
        "symmetric saturation; grant shares must stay balanced",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            op_mix: OpMix::balanced(),
            ..TrafficProfile::default()
        }],
    )
}

/// T07 — reprograms the arbitration priorities mid-run through the
/// programming port.
pub fn priority_prog(intensity: usize) -> TestSpec {
    let mut s = spec(
        "priority_prog",
        "programming port rewrites priorities mid-run",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 1,
            ..TrafficProfile::default()
        }],
    );
    s.prog_schedule = vec![
        (20, vec![1, 9, 5, 7, 3, 8, 2, 6]),
        (60, vec![9, 1, 2, 3, 4, 5, 6, 7]),
    ];
    s
}

/// T08 — locked chunks: pairs of packets that must not be interleaved.
pub fn chunk_locking(intensity: usize) -> TestSpec {
    spec(
        "chunk_locking",
        "locked chunk pairs under contention",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 1,
            chunk_percent: 60,
            ..TrafficProfile::default()
        }],
    )
}

/// T09 — the largest transfers the protocol allows (multi-cell bursts).
pub fn max_size_bursts(intensity: usize) -> TestSpec {
    spec(
        "max_size_bursts",
        "32/64-byte bursts stress multi-cell packets",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 2,
            sizes: vec![TransferSize::B32, TransferSize::B64],
            op_mix: OpMix::balanced(),
            ..TrafficProfile::default()
        }],
    )
}

/// T10 — targets stall hard; exercises flow control and long waits.
pub fn target_stall_storm(intensity: usize) -> TestSpec {
    let mut s = spec(
        "target_stall_storm",
        "heavily throttled slow targets create deep stalls",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            chunk_percent: 20,
            r_gnt_throttle_percent: 30,
            ..TrafficProfile::default()
        }],
    );
    s.target_profiles = vec![TargetProfile {
        min_latency: 12,
        max_latency: 30,
        gnt_throttle_percent: 75,
    }];
    s
}

/// T11 — maximum throughput: everything fast, no throttles, no gaps.
pub fn back_to_back(intensity: usize) -> TestSpec {
    let mut s = spec(
        "back_to_back",
        "zero-gap traffic against instant targets",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            sizes: vec![TransferSize::B8, TransferSize::B16],
            ..TrafficProfile::default()
        }],
    );
    s.target_profiles = vec![TargetProfile::fast()];
    s
}

/// T12 — deliberate accesses to unmapped addresses; the node must answer
/// with error responses.
pub fn error_responses(intensity: usize) -> TestSpec {
    spec(
        "error_responses",
        "unmapped addresses must produce error responses",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 3,
            unmapped_percent: 25,
            ..TrafficProfile::default()
        }],
    )
}

/// The full twelve-test suite at a given intensity.
pub fn all(intensity: usize) -> Vec<TestSpec> {
    vec![
        basic_read_write(intensity),
        random_mixed(intensity),
        out_of_order(intensity),
        latency_stress(intensity),
        bandwidth_share(intensity),
        lru_fairness(intensity),
        priority_prog(intensity),
        chunk_locking(intensity),
        max_size_bursts(intensity),
        target_stall_storm(intensity),
        back_to_back(intensity),
        error_responses(intensity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_named_tests() {
        let suite = all(10);
        assert_eq!(suite.len(), 12);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 12, "names are unique");
        for s in &suite {
            assert!(!s.description.is_empty());
            assert!(!s.profiles.is_empty());
            assert!(!s.target_profiles.is_empty());
        }
    }

    #[test]
    fn out_of_order_uses_differently_fast_targets() {
        let s = out_of_order(10);
        assert!(s.target_profiles.len() >= 2);
        assert!(s.target_profiles[0].max_latency < s.target_profiles[1].min_latency);
    }

    #[test]
    fn error_test_aims_at_unmapped_memory() {
        let s = error_responses(10);
        assert!(s.profiles[0].unmapped_percent > 0);
    }

    #[test]
    fn priority_prog_has_schedule() {
        assert!(!priority_prog(10).prog_schedule.is_empty());
    }
}
