//! The twelve generic test cases (paper §5).
//!
//! "Twelve test cases have been developed to cover the tests of all main
//! features of the node such as out of order traffic or latency based
//! arbitration. … The test cases are generic and depend on some HDL
//! parameters. They can be reused for all configurations of the Node."
//!
//! Each constructor takes an `intensity` — the per-initiator transaction
//! count — so regressions can trade runtime for depth. [`all`] returns the
//! full suite.

use crate::target::TargetProfile;
use crate::testbench::TestSpec;
use crate::traffic::{OpMix, TrafficProfile};
use stbus_protocol::TransferSize;

fn spec(name: &str, description: &str, profiles: Vec<TrafficProfile>) -> TestSpec {
    TestSpec {
        name: name.to_owned(),
        description: description.to_owned(),
        // Every suite entry runs on the declarative constraint model; the
        // profile literals below are lowered through the byte-compatible
        // `to_model`, so historical seeds reproduce exactly.
        profiles: profiles.iter().map(TrafficProfile::to_model).collect(),
        target_profiles: vec![TargetProfile::default()],
        prog_schedule: Vec::new(),
    }
}

/// T01 — directed-style low-rate loads and stores; the smoke test.
pub fn basic_read_write(intensity: usize) -> TestSpec {
    spec(
        "basic_read_write",
        "low-rate loads and stores across all targets",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 6,
            op_mix: OpMix::balanced(),
            ..TrafficProfile::default()
        }],
    )
}

/// T02 — every legal opcode and size, medium pressure.
pub fn random_mixed(intensity: usize) -> TestSpec {
    spec(
        "random_mixed",
        "full opcode/size mix with medium pressure",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 3,
            op_mix: OpMix::full(),
            sizes: TransferSize::ALL.to_vec(),
            ..TrafficProfile::default()
        }],
    )
}

/// T03 — the paper's out-of-order scenario: "short transactions are sent
/// by one initiator to different targets, having different speed".
pub fn out_of_order(intensity: usize) -> TestSpec {
    let mut s = spec(
        "out_of_order",
        "short transactions to fast and slow targets force out-of-order responses",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 1,
            op_mix: OpMix::loads_only(),
            sizes: vec![TransferSize::B4, TransferSize::B8],
            ..TrafficProfile::default()
        }],
    );
    s.target_profiles = vec![TargetProfile::fast(), TargetProfile::slow()];
    s
}

/// T04 — sustained saturation so latency-based arbitration has deadlines
/// to defend.
pub fn latency_stress(intensity: usize) -> TestSpec {
    spec(
        "latency_stress",
        "all initiators saturate one hot target",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            op_mix: OpMix::balanced(),
            targets: vec![stbus_protocol::TargetId(0)],
            ..TrafficProfile::default()
        }],
    )
}

/// T05 — asymmetric demand: initiator 0 hogs, the others trickle —
/// exercises bandwidth limitation.
pub fn bandwidth_share(intensity: usize) -> TestSpec {
    spec(
        "bandwidth_share",
        "one hog plus background traffic on a shared hot target",
        vec![
            TrafficProfile {
                n_transactions: intensity * 2,
                mean_gap: 0,
                targets: vec![stbus_protocol::TargetId(0)],
                ..TrafficProfile::default()
            },
            TrafficProfile {
                n_transactions: intensity / 2 + 1,
                mean_gap: 8,
                targets: vec![stbus_protocol::TargetId(0)],
                ..TrafficProfile::default()
            },
        ],
    )
}

/// T06 — equal saturation from every initiator; LRU must rotate fairly.
pub fn lru_fairness(intensity: usize) -> TestSpec {
    spec(
        "lru_fairness",
        "symmetric saturation; grant shares must stay balanced",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            op_mix: OpMix::balanced(),
            ..TrafficProfile::default()
        }],
    )
}

/// T07 — reprograms the arbitration priorities mid-run through the
/// programming port.
pub fn priority_prog(intensity: usize) -> TestSpec {
    let mut s = spec(
        "priority_prog",
        "programming port rewrites priorities mid-run",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 1,
            ..TrafficProfile::default()
        }],
    );
    s.prog_schedule = vec![
        (20, vec![1, 9, 5, 7, 3, 8, 2, 6]),
        (60, vec![9, 1, 2, 3, 4, 5, 6, 7]),
    ];
    s
}

/// T08 — locked chunks: pairs of packets that must not be interleaved.
pub fn chunk_locking(intensity: usize) -> TestSpec {
    spec(
        "chunk_locking",
        "locked chunk pairs under contention",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 1,
            chunk_percent: 60,
            ..TrafficProfile::default()
        }],
    )
}

/// T09 — the largest transfers the protocol allows (multi-cell bursts).
pub fn max_size_bursts(intensity: usize) -> TestSpec {
    spec(
        "max_size_bursts",
        "32/64-byte bursts stress multi-cell packets",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 2,
            sizes: vec![TransferSize::B32, TransferSize::B64],
            op_mix: OpMix::balanced(),
            ..TrafficProfile::default()
        }],
    )
}

/// T10 — targets stall hard; exercises flow control and long waits.
pub fn target_stall_storm(intensity: usize) -> TestSpec {
    let mut s = spec(
        "target_stall_storm",
        "heavily throttled slow targets create deep stalls",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            chunk_percent: 20,
            r_gnt_throttle_percent: 30,
            ..TrafficProfile::default()
        }],
    );
    s.target_profiles = vec![TargetProfile {
        min_latency: 12,
        max_latency: 30,
        gnt_throttle_percent: 75,
    }];
    s
}

/// T11 — maximum throughput: everything fast, no throttles, no gaps.
pub fn back_to_back(intensity: usize) -> TestSpec {
    let mut s = spec(
        "back_to_back",
        "zero-gap traffic against instant targets",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 0,
            sizes: vec![TransferSize::B8, TransferSize::B16],
            ..TrafficProfile::default()
        }],
    );
    s.target_profiles = vec![TargetProfile::fast()];
    s
}

/// T12 — deliberate accesses to unmapped addresses; the node must answer
/// with error responses.
pub fn error_responses(intensity: usize) -> TestSpec {
    spec(
        "error_responses",
        "unmapped addresses must produce error responses",
        vec![TrafficProfile {
            n_transactions: intensity,
            mean_gap: 3,
            unmapped_percent: 25,
            ..TrafficProfile::default()
        }],
    )
}

/// The full twelve-test suite at a given intensity.
pub fn all(intensity: usize) -> Vec<TestSpec> {
    vec![
        basic_read_write(intensity),
        random_mixed(intensity),
        out_of_order(intensity),
        latency_stress(intensity),
        bandwidth_share(intensity),
        lru_fairness(intensity),
        priority_prog(intensity),
        chunk_locking(intensity),
        max_size_bursts(intensity),
        target_stall_storm(intensity),
        back_to_back(intensity),
        error_responses(intensity),
    ]
}

pub mod strategy {
    //! The shared legal-configuration distribution.
    //!
    //! One audited generator of *legal* node configurations — every shape
    //! it produces must elaborate and run clean on both views. The
    //! workspace property tests sample it through the proptest
    //! [`Strategy`] adapter ([`config_strategy`]) and the differential
    //! bug-hunt fleet (`crates/hunt`) draws from the bare
    //! [`draw_config`], so both hunt over exactly the same configuration
    //! space: a shape the fleet finds a divergence on is a shape the
    //! property suite could have drawn, and vice versa.

    use proptest::{Strategy, TestRng};
    use rand::rngs::StdRng;
    use rand::{Rng as _, RngCore as _};
    use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType};

    /// Draws one legal configuration from the shared distribution:
    /// 1..=4 initiators and targets, any power-of-two bus width up to 32
    /// bytes, all three protocol types, all three architectures (partial
    /// crossbars at 2 lanes), all six arbitration policies, pipeline
    /// depths 0..=2, optional programming port, and outstanding depths
    /// 1..=6.
    pub fn draw_config(rng: &mut StdRng) -> NodeConfig {
        let ni = rng.gen_range(1usize..=4);
        let nt = rng.gen_range(1usize..=4);
        let bus_log2 = rng.gen_range(0usize..=5);
        let protocol = rng.gen_range(0usize..=2);
        let arch = rng.gen_range(0usize..=2);
        let arbitration = rng.gen_range(0usize..=5);
        let pipe = rng.gen_range(0usize..=2);
        let prog = rng.next_u64() & 1 == 1;
        let outstanding = rng.gen_range(1usize..=6);
        NodeConfig::builder("random")
            .initiators(ni)
            .targets(nt)
            .bus_bytes(1 << bus_log2)
            .protocol(
                [
                    ProtocolType::Type1,
                    ProtocolType::Type2,
                    ProtocolType::Type3,
                ][protocol],
            )
            .architecture(
                [
                    Architecture::SharedBus,
                    Architecture::PartialCrossbar { lanes: 2 },
                    Architecture::FullCrossbar,
                ][arch],
            )
            .arbitration(ArbitrationKind::ALL[arbitration])
            .pipe_depth(pipe)
            .prog_port(prog)
            .max_outstanding(outstanding)
            .build()
            .expect("strategy produces legal configs")
    }

    /// The proptest adapter over [`draw_config`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct ConfigStrategy;

    impl Strategy for ConfigStrategy {
        type Value = NodeConfig;
        fn sample(&self, rng: &mut TestRng) -> NodeConfig {
            draw_config(rng)
        }
    }

    /// A strategy over legal node configurations, for `proptest!` blocks.
    pub fn config_strategy() -> ConfigStrategy {
        ConfigStrategy
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::SeedableRng as _;

        #[test]
        fn draws_are_deterministic_per_seed_and_legal() {
            for seed in 0..32u64 {
                let a = draw_config(&mut StdRng::seed_from_u64(seed));
                let b = draw_config(&mut StdRng::seed_from_u64(seed));
                assert_eq!(a, b, "seed {seed} not reproducible");
                assert!((1..=4).contains(&a.n_initiators));
                assert!((1..=4).contains(&a.n_targets));
                assert!(a.bus_bytes.is_power_of_two() && a.bus_bytes <= 32);
            }
        }

        #[test]
        fn adapter_and_bare_draw_share_one_stream() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            assert_eq!(config_strategy().sample(&mut a), draw_config(&mut b));
        }

        #[test]
        fn distribution_reaches_every_policy_and_architecture() {
            let mut arbs = std::collections::BTreeSet::new();
            let mut archs = std::collections::BTreeSet::new();
            for seed in 0..256u64 {
                let c = draw_config(&mut StdRng::seed_from_u64(seed));
                arbs.insert(format!("{:?}", c.arbitration));
                archs.insert(format!("{:?}", c.arch));
            }
            assert_eq!(arbs.len(), 6, "{arbs:?}");
            assert_eq!(archs.len(), 3, "{archs:?}");
        }
    }
}

pub mod qualification {
    //! The shared qualification campaign shape.
    //!
    //! One place defines *how hard the environment hunts* — which
    //! configurations, which tests, which seeds, which alignment spec and
    //! sign-off threshold. Both the `bug_detection` integration test and
    //! the mutation-qualification engine (`crates/mutation`, surfaced as
    //! `stbus_regress --qualify`) build on these helpers, so the two can
    //! never drift apart: a mutation that survives here survives there.

    use super::{all, lru_fairness};
    use crate::testbench::{RunResult, TestSpec, Testbench, TestbenchOptions};
    use stbus_protocol::{ArbitrationKind, Architecture, DutView, NodeConfig, ProtocolType};

    /// Per-initiator transaction count for the functional hunt.
    pub const INTENSITY: usize = 20;
    /// Seeds each {config, test} functional cell is run with.
    pub const SEEDS: [u64; 2] = [1, 2];
    /// Per-initiator transaction count for the alignment run.
    pub const ALIGNMENT_INTENSITY: usize = 25;
    /// The seed the alignment comparison uses.
    pub const ALIGNMENT_SEED: u64 = 1;
    /// STBA sign-off threshold: alignment below this rate is a detection.
    pub const SIGNOFF: f64 = 0.99;

    /// The Type 2 (ordered-response) hunt configuration: ordered-response
    /// rules are invisible on the Type 3 reference node.
    pub fn t2_hunt() -> NodeConfig {
        NodeConfig::builder("t2_hunt")
            .initiators(3)
            .targets(2)
            .bus_bytes(8)
            .protocol(ProtocolType::Type2)
            .architecture(Architecture::FullCrossbar)
            .arbitration(ArbitrationKind::Lru)
            .build()
            .expect("valid")
    }

    /// The programmable-priority hunt configuration: only the
    /// variable-priority policy consumes programming-port writes, so a
    /// defect in the priority register needs this shape to matter.
    pub fn prog_hunt() -> NodeConfig {
        NodeConfig::builder("prog_hunt")
            .initiators(3)
            .targets(2)
            .bus_bytes(8)
            .protocol(ProtocolType::Type3)
            .architecture(Architecture::FullCrossbar)
            .arbitration(ArbitrationKind::VariablePriority)
            .prog_port(true)
            .build()
            .expect("valid")
    }

    /// The partial-crossbar hunt configuration: lane-mask defects only
    /// bite when the lane count is both limiting and greater than one.
    pub fn partial_hunt() -> NodeConfig {
        NodeConfig::builder("partial_hunt")
            .initiators(3)
            .targets(3)
            .bus_bytes(8)
            .protocol(ProtocolType::Type3)
            .architecture(Architecture::PartialCrossbar { lanes: 2 })
            .arbitration(ArbitrationKind::Lru)
            .build()
            .expect("valid")
    }

    /// The two canonical hunt configurations of experiment E2.
    pub fn hunt_configs() -> Vec<NodeConfig> {
        vec![NodeConfig::reference(), t2_hunt()]
    }

    /// The full qualification configuration set: the E2 pair plus the
    /// shapes that make priority-port and lane-mask defects observable.
    pub fn qualification_configs() -> Vec<NodeConfig> {
        vec![
            NodeConfig::reference(),
            t2_hunt(),
            prog_hunt(),
            partial_hunt(),
        ]
    }

    /// The functional hunt suite (all twelve tests at hunt intensity).
    pub fn suite() -> Vec<TestSpec> {
        all(INTENSITY)
    }

    /// The test the alignment comparison replays on both views.
    pub fn alignment_spec() -> TestSpec {
        lru_fairness(ALIGNMENT_INTENSITY)
    }

    /// The alignment specs a qualification campaign replays: the fairness
    /// spec plus the programming-port spec — the only test that writes
    /// the priority register, without which a dead priority port can
    /// never show up as an alignment drop.
    pub fn alignment_specs() -> Vec<TestSpec> {
        vec![alignment_spec(), super::priority_prog(ALIGNMENT_INTENSITY)]
    }

    /// Testbench options for the functional stage.
    pub fn functional_options() -> TestbenchOptions {
        TestbenchOptions::default()
    }

    /// Testbench options for the alignment stage (waveforms captured).
    pub fn alignment_options() -> TestbenchOptions {
        TestbenchOptions {
            capture_vcd: true,
            ..TestbenchOptions::default()
        }
    }

    /// Runs one functional cell and reports whether it failed.
    pub fn functional_cell_fails(
        config: &NodeConfig,
        dut: &mut dyn DutView,
        spec: &TestSpec,
        seed: u64,
    ) -> bool {
        let bench = Testbench::new(config.clone(), functional_options());
        !bench.run(dut, spec, seed).passed()
    }

    /// Runs the functional hunt — every {config, test, seed} cell over
    /// the given configurations against a freshly built view — and
    /// returns true as soon as any cell fails.
    pub fn functional_detects(
        configs: &[NodeConfig],
        mut build: impl FnMut(&NodeConfig) -> Box<dyn DutView>,
    ) -> bool {
        for config in configs {
            let mut dut = build(config);
            for spec in suite() {
                for seed in SEEDS {
                    if functional_cell_fails(config, dut.as_mut(), &spec, seed) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Replays the alignment spec on both views and returns the STBA
    /// alignment rate, if both runs produced waveforms.
    pub fn alignment_rate(
        config: &NodeConfig,
        a: &mut dyn DutView,
        b: &mut dyn DutView,
    ) -> Option<f64> {
        let bench = Testbench::new(config.clone(), alignment_options());
        let spec = alignment_spec();
        let ra = bench.run(a, &spec, ALIGNMENT_SEED);
        let rb = bench.run(b, &spec, ALIGNMENT_SEED);
        match (&ra.vcd, &rb.vcd) {
            (Some(va), Some(vb)) => stba::compare_vcd(va, vb, crate::vcd_cycle_time())
                .ok()
                .map(|report| report.min_rate()),
            _ => None,
        }
    }

    /// Runs the alignment stage and reports whether the pair of views
    /// falls below the sign-off threshold.
    pub fn alignment_detects(
        config: &NodeConfig,
        clean: &mut dyn DutView,
        mutated: &mut dyn DutView,
    ) -> bool {
        matches!(alignment_rate(config, clean, mutated), Some(rate) if rate < SIGNOFF)
    }

    /// The number of functional cells a campaign runs per mutation, for
    /// sizing reports: `configs × tests × seeds`.
    pub fn functional_cell_count(configs: &[NodeConfig]) -> usize {
        configs.len() * suite().len() * SEEDS.len()
    }

    /// Classifies one functional run for qualification attribution.
    ///
    /// Precedence mirrors how an engineer would triage the failure: a
    /// protocol-rule violation names the defect most precisely, then the
    /// starvation watchdog, then scoreboard/anomaly evidence (which
    /// includes traffic that never completed).
    pub fn classify_functional_failure(result: &RunResult) -> Option<FunctionalDetection> {
        if let Some(v) = result.checker.violations.first() {
            return Some(match v.kind {
                crate::checker::ViolationKind::Rule(rule) => FunctionalDetection::Checker(rule),
                crate::checker::ViolationKind::Starvation => FunctionalDetection::Starvation,
            });
        }
        if !result.scoreboard_errors.is_empty() || !result.anomalies.is_empty() || !result.completed
        {
            return Some(FunctionalDetection::Scoreboard);
        }
        None
    }

    /// What a failing functional cell was attributed to.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum FunctionalDetection {
        /// A protocol-checker rule fired.
        Checker(stbus_protocol::rules::RuleId),
        /// The starvation watchdog fired.
        Starvation,
        /// The scoreboard (or an end-of-test anomaly) flagged the run.
        Scoreboard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_named_tests() {
        let suite = all(10);
        assert_eq!(suite.len(), 12);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 12, "names are unique");
        for s in &suite {
            assert!(!s.description.is_empty());
            assert!(!s.profiles.is_empty());
            assert!(!s.target_profiles.is_empty());
        }
    }

    #[test]
    fn out_of_order_uses_differently_fast_targets() {
        let s = out_of_order(10);
        assert!(s.target_profiles.len() >= 2);
        assert!(s.target_profiles[0].max_latency < s.target_profiles[1].min_latency);
    }

    #[test]
    fn error_test_aims_at_unmapped_memory() {
        let s = error_responses(10);
        assert!(s.profiles[0].unmapped_percent > 0);
    }

    #[test]
    fn priority_prog_has_schedule() {
        assert!(!priority_prog(10).prog_schedule.is_empty());
    }
}
