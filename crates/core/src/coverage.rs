//! The functional-coverage model.
//!
//! "The functional coverage is built in the common verification
//! environment and it can be obtained in both RTL and BCA models (of
//! course they must be equal running the same tests)" (paper §4). The
//! bins below are declared up front from the configuration, so coverage
//! percentages are comparable across runs and views, and 100% is the
//! sign-off goal the twelve-test suite must reach cumulatively.

use crate::monitor::MonitorEvent;
use crate::record::{CycleRecord, PortId};
use stbus_protocol::packet::request_cells;
use stbus_protocol::{NodeConfig, OpKind, Opcode, RspKind, TransferSize};
use std::collections::BTreeMap;

/// A typed coverage-hole identifier: one never-hit bin of one group.
///
/// Promoted from the formatted `"group/bin"` strings so machine consumers
/// (reports, and the `cdg` bias pass that re-aims the generator at open
/// holes) can match on the parts; [`HoleId::to_string`] still renders the
/// historical `group/bin` form, so textual reports are unchanged.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HoleId {
    /// The coverage group the unhit bin belongs to.
    pub group: String,
    /// The unhit bin's name within the group.
    pub bin: String,
}

impl HoleId {
    /// A hole identifier from group and bin names.
    pub fn new(group: impl Into<String>, bin: impl Into<String>) -> Self {
        HoleId {
            group: group.into(),
            bin: bin.into(),
        }
    }
}

impl std::fmt::Display for HoleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.group, self.bin)
    }
}

/// One named group of coverage bins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageGroup {
    /// Group name.
    pub name: String,
    /// Bin name → hit count. Bins are pre-declared; never-hit bins stay
    /// at zero and count against coverage.
    pub bins: BTreeMap<String, u64>,
}

impl CoverageGroup {
    fn new(name: &str, bins: impl IntoIterator<Item = String>) -> Self {
        CoverageGroup {
            name: name.to_owned(),
            bins: bins.into_iter().map(|b| (b, 0)).collect(),
        }
    }

    /// Fraction of bins hit, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.bins.is_empty() {
            return 1.0;
        }
        self.bins.values().filter(|h| **h > 0).count() as f64 / self.bins.len() as f64
    }

    /// Bins never hit.
    pub fn holes(&self) -> impl Iterator<Item = &str> {
        self.bins
            .iter()
            .filter(|(_, h)| **h == 0)
            .map(|(b, _)| b.as_str())
    }
}

/// A snapshot of all groups, mergeable across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageReport {
    /// All groups, in declaration order.
    pub groups: Vec<CoverageGroup>,
}

impl CoverageReport {
    /// Overall coverage: hit bins over declared bins, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let (hit, total) = self.groups.iter().fold((0usize, 0usize), |(h, t), g| {
            (
                h + g.bins.values().filter(|x| **x > 0).count(),
                t + g.bins.len(),
            )
        });
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// True at the paper's sign-off goal.
    pub fn is_full(&self) -> bool {
        self.groups.iter().all(|g| g.coverage() == 1.0)
    }

    /// Merges hit counts of another report of the same shape.
    ///
    /// # Panics
    ///
    /// Panics when the reports were built for different configurations.
    pub fn merge(&mut self, other: &CoverageReport) {
        assert_eq!(
            self.groups.len(),
            other.groups.len(),
            "coverage shape mismatch"
        );
        for (a, b) in self.groups.iter_mut().zip(&other.groups) {
            assert_eq!(a.name, b.name, "coverage shape mismatch");
            for (bin, hits) in &b.bins {
                *a.bins.get_mut(bin).expect("coverage shape mismatch") += hits;
            }
        }
    }

    /// True when the two reports hit exactly the same set of bins
    /// (ignoring hit counts, which legitimately differ across views when
    /// unconstrained timing differs).
    pub fn same_hits(&self, other: &CoverageReport) -> bool {
        self.groups.len() == other.groups.len()
            && self.groups.iter().zip(&other.groups).all(|(a, b)| {
                a.name == b.name
                    && a.bins.len() == b.bins.len()
                    && a.bins
                        .iter()
                        .zip(&b.bins)
                        .all(|((ka, va), (kb, vb))| ka == kb && (*va > 0) == (*vb > 0))
            })
    }

    /// All unhit bins as typed [`HoleId`]s, in group declaration order.
    pub fn holes(&self) -> Vec<HoleId> {
        let mut out = Vec::new();
        for g in &self.groups {
            for b in g.holes() {
                out.push(HoleId::new(g.name.as_str(), b));
            }
        }
        out
    }

    /// The number of declared bins across all groups.
    pub fn total_bins(&self) -> usize {
        self.groups.iter().map(|g| g.bins.len()).sum()
    }

    /// The number of bins hit at least once across all groups.
    pub fn hit_bins(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.bins.values().filter(|h| **h > 0).count())
            .sum()
    }
}

impl std::fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "functional coverage: {:6.2}%", self.coverage() * 100.0)?;
        for g in &self.groups {
            writeln!(
                f,
                "  {:<24} {:6.2}%  ({} bins)",
                g.name,
                g.coverage() * 100.0,
                g.bins.len()
            )?;
        }
        Ok(())
    }
}

/// The live functional-coverage collector.
#[derive(Debug)]
pub struct FunctionalCoverage {
    config: NodeConfig,
    groups: BTreeMap<&'static str, CoverageGroup>,
    /// Per-initiator wait-cycle counter feeding the stall bins.
    wait: Vec<u64>,
    /// Per-target: was a grant seen last cycle (back-to-back detection)?
    last_grant: Vec<bool>,
}

const G_OPKIND: &str = "op_kind";
const G_SIZE: &str = "transfer_size";
const G_ROUTING: &str = "routing";
const G_PKT_LEN: &str = "packet_len";
const G_RSP: &str = "response_kind";
const G_ARB: &str = "arbitration";
const G_STALL: &str = "stall";
const G_FEATURES: &str = "features";

impl FunctionalCoverage {
    /// Declares the bins implied by a configuration.
    pub fn new(config: &NodeConfig) -> Self {
        let legal = Opcode::all_for(config.protocol);
        let kinds: std::collections::BTreeSet<OpKind> = legal.iter().map(|o| o.kind()).collect();
        let sizes: std::collections::BTreeSet<TransferSize> =
            legal.iter().map(|o| o.size()).collect();
        let lens: std::collections::BTreeSet<usize> = legal
            .iter()
            .map(|o| request_cells(*o, config.protocol, config.bus_bytes))
            .collect();

        let mut groups = BTreeMap::new();
        groups.insert(
            G_OPKIND,
            CoverageGroup::new(
                G_OPKIND,
                (0..config.n_initiators)
                    .flat_map(|i| kinds.iter().map(move |k| format!("i{i}/{k}"))),
            ),
        );
        groups.insert(
            G_SIZE,
            CoverageGroup::new(G_SIZE, sizes.iter().map(|s| format!("{s}B"))),
        );
        groups.insert(
            G_ROUTING,
            CoverageGroup::new(
                G_ROUTING,
                (0..config.n_initiators)
                    .flat_map(|i| (0..config.n_targets).map(move |t| format!("i{i}->t{t}"))),
            ),
        );
        groups.insert(
            G_PKT_LEN,
            CoverageGroup::new(G_PKT_LEN, lens.iter().map(|l| format!("{l}cells"))),
        );
        groups.insert(
            G_RSP,
            CoverageGroup::new(G_RSP, ["ok".to_owned(), "error".to_owned()]),
        );
        groups.insert(
            G_ARB,
            CoverageGroup::new(
                G_ARB,
                (0..config.n_targets)
                    .flat_map(|t| [format!("t{t}/contention"), format!("t{t}/back_to_back")]),
            ),
        );
        groups.insert(
            G_STALL,
            CoverageGroup::new(
                G_STALL,
                ["zero", "short", "medium", "long"].map(str::to_owned),
            ),
        );
        let mut features = vec!["multi_cell_packet".to_owned()];
        if config.protocol.split_transactions() {
            features.push("locked_chunk".to_owned());
            features.push("outstanding_gt1".to_owned());
        }
        if config.protocol.allows_out_of_order() {
            features.push("out_of_order_response".to_owned());
        }
        if config.prog_port {
            features.push("reprogrammed".to_owned());
        }
        groups.insert(G_FEATURES, CoverageGroup::new(G_FEATURES, features));

        FunctionalCoverage {
            groups,
            wait: vec![0; config.n_initiators],
            last_grant: vec![false; config.n_targets],
            config: config.clone(),
        }
    }

    fn hit(&mut self, group: &'static str, bin: &str) {
        if let Some(g) = self.groups.get_mut(group) {
            if let Some(h) = g.bins.get_mut(bin) {
                *h += 1;
            }
        }
    }

    /// Digests one cycle record (arbitration, stall and prog events).
    pub fn observe_cycle(&mut self, rec: &CycleRecord) {
        // Contention & back-to-back per target.
        for t in 0..self.config.n_targets {
            let requesters = (0..self.config.n_initiators)
                .filter(|i| {
                    let (req, cell, _) = rec.init_request(*i);
                    req && self
                        .config
                        .address_map
                        .decode(cell.addr)
                        .map(|x| x.0 as usize)
                        == Some(t)
                })
                .count();
            if requesters >= 2 {
                self.hit(G_ARB, &format!("t{t}/contention"));
            }
            let fired = rec.request_fires(PortId::Target(t));
            if fired && self.last_grant[t] {
                self.hit(G_ARB, &format!("t{t}/back_to_back"));
            }
            self.last_grant[t] = fired;
        }
        // Stall bins per initiator.
        for i in 0..self.config.n_initiators {
            let (req, _, gnt) = rec.init_request(i);
            if req && gnt {
                let bin = match self.wait[i] {
                    0 => "zero",
                    1..=3 => "short",
                    4..=15 => "medium",
                    _ => "long",
                };
                self.hit(G_STALL, bin);
                self.wait[i] = 0;
            } else if req {
                self.wait[i] += 1;
            } else {
                self.wait[i] = 0;
            }
        }
        // Programming-port usage.
        if rec.inputs.prog.is_some() {
            self.hit(G_FEATURES, "reprogrammed");
        }
        // Out-of-order delivery: a response fires at an initiator from a
        // target that is not the oldest outstanding — approximated here as
        // two distinct targets responding in the same window; the precise
        // signal comes from packets below.
    }

    /// Digests one monitor event (packets and responses).
    pub fn observe_event(&mut self, event: &MonitorEvent) {
        match event {
            MonitorEvent::RequestPacket {
                port: PortId::Initiator(i),
                packet,
                ..
            } => {
                let op = packet.opcode();
                self.hit(G_OPKIND, &format!("i{i}/{}", op.kind()));
                self.hit(G_SIZE, &format!("{}B", op.size()));
                self.hit(G_PKT_LEN, &format!("{}cells", packet.len()));
                if let Some(t) = self.config.address_map.decode(packet.addr()) {
                    self.hit(G_ROUTING, &format!("i{i}->t{}", t.0));
                }
                if packet.len() > 1 {
                    self.hit(G_FEATURES, "multi_cell_packet");
                }
                if packet.cells()[0].lock {
                    self.hit(G_FEATURES, "locked_chunk");
                }
            }
            MonitorEvent::ResponsePacket {
                port: PortId::Initiator(_),
                packet,
                ..
            } => {
                let bin = if packet.cells().iter().any(|c| c.kind == RspKind::Error) {
                    "error"
                } else {
                    "ok"
                };
                self.hit(G_RSP, bin);
            }
            _ => {}
        }
    }

    /// Marks the out-of-order bin (driven by the testbench, which tracks
    /// per-initiator request order globally).
    pub fn note_out_of_order(&mut self) {
        self.hit(G_FEATURES, "out_of_order_response");
    }

    /// Marks the >1-outstanding bin.
    pub fn note_outstanding_gt1(&mut self) {
        self.hit(G_FEATURES, "outstanding_gt1");
    }

    /// Snapshots the report.
    pub fn report(&self) -> CoverageReport {
        CoverageReport {
            groups: self.groups.values().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::packet::PacketParams;
    use stbus_protocol::{DutInputs, DutOutputs, InitiatorId, RequestPacket, TransactionId};

    fn cfg() -> NodeConfig {
        NodeConfig::reference()
    }

    #[test]
    fn bins_are_declared_from_config() {
        let cov = FunctionalCoverage::new(&cfg());
        let report = cov.report();
        assert!(report.coverage() < 0.01);
        assert!(!report.is_full());
        let names: Vec<&str> = report.groups.iter().map(|g| g.name.as_str()).collect();
        assert!(names.contains(&"routing"));
        assert!(names.contains(&"features"));
        // T3 with prog port: ooo + prog bins exist.
        assert!(report
            .holes()
            .iter()
            .any(|h| h.bin.contains("out_of_order")));
        assert!(report.holes().iter().any(|h| h.bin == "reprogrammed"));
        // The typed holes render in the historical group/bin form.
        let ooo = report
            .holes()
            .into_iter()
            .find(|h| h.bin == "out_of_order_response")
            .unwrap();
        assert_eq!(ooo.to_string(), "features/out_of_order_response");
    }

    #[test]
    fn type2_has_no_ooo_bin() {
        let c = NodeConfig::builder("t2")
            .protocol(stbus_protocol::ProtocolType::Type2)
            .build()
            .unwrap();
        let cov = FunctionalCoverage::new(&c);
        assert!(!cov
            .report()
            .holes()
            .iter()
            .any(|h| h.bin.contains("out_of_order")));
    }

    #[test]
    fn request_packet_hits_bins() {
        let c = cfg();
        let mut cov = FunctionalCoverage::new(&c);
        let pkt = RequestPacket::build(
            stbus_protocol::Opcode::load(TransferSize::B8),
            0x0100_0000,
            &[],
            PacketParams {
                bus_bytes: c.bus_bytes,
                protocol: c.protocol,
                endianness: c.endianness,
            },
            InitiatorId(1),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        cov.observe_event(&MonitorEvent::RequestPacket {
            port: PortId::Initiator(1),
            cycle: 1,
            start: 1,
            packet: pkt,
        });
        let report = cov.report();
        let routing = report.groups.iter().find(|g| g.name == "routing").unwrap();
        assert_eq!(routing.bins["i1->t1"], 1);
        assert_eq!(routing.bins["i0->t0"], 0);
        let sizes = report
            .groups
            .iter()
            .find(|g| g.name == "transfer_size")
            .unwrap();
        assert_eq!(sizes.bins["8B"], 1);
    }

    #[test]
    fn stall_bins_follow_wait_time() {
        let c = cfg();
        let mut cov = FunctionalCoverage::new(&c);
        // 5 cycles of req without gnt, then a grant -> "medium".
        for cycle in 0..6u64 {
            let mut rec = CycleRecord {
                cycle,
                inputs: DutInputs::idle(&c),
                outputs: DutOutputs::idle(&c),
            };
            rec.inputs.initiator[0].req = true;
            if cycle == 5 {
                rec.outputs.initiator[0].gnt = true;
            }
            cov.observe_cycle(&rec);
        }
        let report = cov.report();
        let stall = report.groups.iter().find(|g| g.name == "stall").unwrap();
        assert_eq!(stall.bins["medium"], 1);
        assert_eq!(stall.bins["zero"], 0);
    }

    #[test]
    fn merge_accumulates_and_checks_shape() {
        let c = cfg();
        let mut cov = FunctionalCoverage::new(&c);
        cov.note_out_of_order();
        let mut a = cov.report();
        let b = cov.report();
        a.merge(&b);
        let features = a.groups.iter().find(|g| g.name == "features").unwrap();
        assert_eq!(features.bins["out_of_order_response"], 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_different_configs() {
        let a = FunctionalCoverage::new(&cfg()).report();
        let c2 = NodeConfig::builder("other").initiators(5).build().unwrap();
        let b = FunctionalCoverage::new(&c2).report();
        let mut a = a;
        a.merge(&b);
    }
}
