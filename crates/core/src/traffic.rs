//! Constrained-random traffic generation.
//!
//! Each initiator harness executes a pre-generated, fully deterministic
//! schedule of [`TransactionPlan`]s derived from `(profile, seed,
//! initiator)`. Issue times are *absolute* cycles, so a one-cycle grant
//! perturbation in one design view does not cascade into a permanently
//! shifted stimulus — the property that keeps the RTL/BCA alignment
//! comparison meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stbus_protocol::{NodeConfig, OpKind, Opcode, TargetId, TransferSize};

/// Relative weights of operation kinds in generated traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of loads.
    pub load: u32,
    /// Weight of stores.
    pub store: u32,
    /// Weight of read-modify-writes.
    pub rmw: u32,
    /// Weight of swaps.
    pub swap: u32,
    /// Weight of flushes.
    pub flush: u32,
    /// Weight of purges.
    pub purge: u32,
}

impl OpMix {
    /// Loads and stores in equal measure — the bread-and-butter mix.
    pub fn balanced() -> Self {
        OpMix {
            load: 4,
            store: 4,
            rmw: 0,
            swap: 0,
            flush: 0,
            purge: 0,
        }
    }

    /// Every operation kind, weighted toward loads/stores but with the
    /// rare kinds frequent enough that every initiator exercises each of
    /// them in a modest run.
    pub fn full() -> Self {
        OpMix {
            load: 5,
            store: 5,
            rmw: 2,
            swap: 2,
            flush: 2,
            purge: 2,
        }
    }

    /// Stores only (used by directed write phases).
    pub fn stores_only() -> Self {
        OpMix {
            load: 0,
            store: 1,
            rmw: 0,
            swap: 0,
            flush: 0,
            purge: 0,
        }
    }

    /// Loads only.
    pub fn loads_only() -> Self {
        OpMix {
            load: 1,
            store: 0,
            rmw: 0,
            swap: 0,
            flush: 0,
            purge: 0,
        }
    }

    fn total(&self) -> u32 {
        self.load + self.store + self.rmw + self.swap + self.flush + self.purge
    }

    /// Draws one kind according to the weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn pick(&self, rng: &mut StdRng) -> OpKind {
        let total = self.total();
        assert!(total > 0, "op mix must have nonzero weight");
        let mut x = rng.gen_range(0..total);
        for (kind, w) in [
            (OpKind::Load, self.load),
            (OpKind::Store, self.store),
            (OpKind::ReadModifyWrite, self.rmw),
            (OpKind::Swap, self.swap),
            (OpKind::Flush, self.flush),
            (OpKind::Purge, self.purge),
        ] {
            if x < w {
                return kind;
            }
            x -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// The knobs of one initiator's random traffic.
#[derive(Clone, Debug)]
pub struct TrafficProfile {
    /// Number of transactions to issue.
    pub n_transactions: usize,
    /// Mean gap (cycles) between scheduled issues; 0 = saturate.
    pub mean_gap: u64,
    /// Operation-kind weights.
    pub op_mix: OpMix,
    /// Allowed transfer sizes (filtered to protocol-legal ones).
    pub sizes: Vec<TransferSize>,
    /// Targets this initiator talks to (uniform choice). Empty = all.
    pub targets: Vec<TargetId>,
    /// Percent (0–100) of transactions grouped into 2-packet locked
    /// chunks.
    pub chunk_percent: u32,
    /// Percent (0–100) of transactions aimed at an unmapped address.
    pub unmapped_percent: u32,
    /// Request priority hint.
    pub pri: u8,
    /// Percent (0–100) of cycles on which the initiator throttles its
    /// response acceptance (`r_gnt` low).
    pub r_gnt_throttle_percent: u32,
    /// Size in bytes of the per-target address window the traffic stays
    /// inside (small windows create read-after-write interactions).
    pub window: u64,
}

impl Default for TrafficProfile {
    fn default() -> Self {
        TrafficProfile {
            n_transactions: 50,
            mean_gap: 4,
            op_mix: OpMix::balanced(),
            sizes: vec![TransferSize::B4, TransferSize::B8, TransferSize::B16],
            targets: Vec::new(),
            chunk_percent: 0,
            unmapped_percent: 0,
            pri: 0,
            r_gnt_throttle_percent: 0,
            window: 4096,
        }
    }
}

/// One planned transaction of an initiator's schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransactionPlan {
    /// Earliest absolute cycle to present the first cell.
    pub issue_cycle: u64,
    /// The operation.
    pub opcode: Opcode,
    /// Transfer address (size-aligned; may be unmapped on purpose).
    pub addr: u64,
    /// Store payload (empty for dataless requests).
    pub payload: Vec<u8>,
    /// Chunk lock flag.
    pub lock: bool,
    /// Priority hint.
    pub pri: u8,
    /// Whether the plan deliberately targets an unmapped address.
    pub expect_error: bool,
}

/// Generates the deterministic schedule for one initiator.
///
/// The same `(profile, config, initiator, seed)` always produces the same
/// plans — the paper's "same test cases … with same seeds" requirement.
pub fn generate_plans(
    profile: &TrafficProfile,
    config: &NodeConfig,
    initiator: usize,
    seed: u64,
) -> Vec<TransactionPlan> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (initiator as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    let sizes: Vec<TransferSize> = profile
        .sizes
        .iter()
        .copied()
        .filter(|s| {
            Opcode::load(*s).legal_for(config.protocol)
                || Opcode::store(*s).legal_for(config.protocol)
        })
        .collect();
    let sizes = if sizes.is_empty() {
        vec![TransferSize::B4]
    } else {
        sizes
    };
    let targets: Vec<TargetId> = if profile.targets.is_empty() {
        (0..config.n_targets).map(|t| TargetId(t as u8)).collect()
    } else {
        profile.targets.clone()
    };

    let mut plans = Vec::with_capacity(profile.n_transactions);
    let mut cycle = 1u64;
    let mut chunk_follow = false;
    let mut chunk_target = TargetId(0);
    while plans.len() < profile.n_transactions {
        // Pick an opcode legal for the protocol.
        let opcode = loop {
            let kind = profile.op_mix.pick(&mut rng);
            let size = sizes[rng.gen_range(0..sizes.len())];
            let op = Opcode::new(kind, size);
            if op.legal_for(config.protocol) {
                break op;
            }
        };
        let size = opcode.size().bytes() as u64;

        let (target, lock) = if chunk_follow {
            chunk_follow = false;
            (chunk_target, false) // close the chunk
        } else {
            let t = targets[rng.gen_range(0..targets.len())];
            let open_chunk = rng.gen_range(0..100) < profile.chunk_percent
                && plans.len() + 1 < profile.n_transactions;
            if open_chunk {
                chunk_follow = true;
                chunk_target = t;
            }
            (t, open_chunk)
        };

        let expect_error = !lock
            && !chunk_follow
            && rng.gen_range(0..100) < profile.unmapped_percent
            && config.address_map.unmapped_address().is_some();
        let addr = if expect_error {
            let base = config.address_map.unmapped_address().expect("checked");
            base + rng.gen_range(0..profile.window / size.max(1)) * size
        } else {
            let base = config.address_map.base_of(target).unwrap_or(0);
            let span = config
                .address_map
                .size_of(target)
                .unwrap_or(profile.window)
                .min(profile.window);
            base + rng.gen_range(0..(span / size).max(1)) * size
        };

        let payload = if opcode.has_request_data() {
            (0..opcode.size().bytes()).map(|_| rng.gen()).collect()
        } else {
            Vec::new()
        };

        plans.push(TransactionPlan {
            issue_cycle: cycle,
            opcode,
            addr,
            payload,
            lock,
            pri: profile.pri,
            expect_error,
        });

        // Chunk members are scheduled back-to-back; otherwise advance by
        // a random gap around the configured mean.
        if !chunk_follow {
            cycle += if profile.mean_gap == 0 {
                0
            } else {
                rng.gen_range(0..=profile.mean_gap * 2)
            };
            cycle += 1;
        }
    }
    plans
}

/// A pure per-cycle throttle decision: deterministic across views.
pub(crate) fn throttled(seed: u64, salt: u64, cycle: u64, percent: u32) -> bool {
    if percent == 0 {
        return false;
    }
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(cycle.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let h = x ^ (x >> 29);
    (h % 100) < percent as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::ProtocolType;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile::default();
        let a = generate_plans(&p, &cfg, 0, 42);
        let b = generate_plans(&p, &cfg, 0, 42);
        assert_eq!(a, b);
        let c = generate_plans(&p, &cfg, 0, 43);
        assert_ne!(a, c, "different seed, different schedule");
        let d = generate_plans(&p, &cfg, 1, 42);
        assert_ne!(a, d, "different initiator, different schedule");
    }

    #[test]
    fn plans_respect_protocol_and_alignment() {
        let cfg = NodeConfig::builder("t1")
            .protocol(ProtocolType::Type1)
            .bus_bytes(4)
            .build()
            .unwrap();
        let p = TrafficProfile {
            op_mix: OpMix::full(),
            sizes: TransferSize::ALL.to_vec(),
            n_transactions: 100,
            ..TrafficProfile::default()
        };
        for plan in generate_plans(&p, &cfg, 0, 7) {
            assert!(
                plan.opcode.legal_for(ProtocolType::Type1),
                "{:?}",
                plan.opcode
            );
            assert_eq!(plan.addr % plan.opcode.size().bytes() as u64, 0);
            if plan.opcode.has_request_data() {
                assert_eq!(plan.payload.len(), plan.opcode.size().bytes());
            } else {
                assert!(plan.payload.is_empty());
            }
        }
    }

    #[test]
    fn issue_cycles_are_nondecreasing() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            n_transactions: 60,
            mean_gap: 3,
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&p, &cfg, 2, 99);
        assert_eq!(plans.len(), 60);
        for w in plans.windows(2) {
            assert!(w[0].issue_cycle <= w[1].issue_cycle);
        }
    }

    #[test]
    fn chunks_come_in_pairs_on_one_target() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            n_transactions: 40,
            chunk_percent: 100,
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&p, &cfg, 0, 5);
        let mut k = 0;
        while k < plans.len() {
            if plans[k].lock {
                assert!(k + 1 < plans.len(), "lock must be followed by closer");
                assert!(!plans[k + 1].lock);
                assert_eq!(
                    cfg.address_map.decode(plans[k].addr),
                    cfg.address_map.decode(plans[k + 1].addr),
                    "chunk stays on one target"
                );
                k += 2;
            } else {
                k += 1;
            }
        }
        assert!(plans.iter().any(|p| p.lock), "chunks were generated");
    }

    #[test]
    fn unmapped_plans_decode_to_none() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            n_transactions: 50,
            unmapped_percent: 50,
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&p, &cfg, 0, 11);
        let erroring: Vec<_> = plans.iter().filter(|p| p.expect_error).collect();
        assert!(!erroring.is_empty());
        for plan in erroring {
            assert_eq!(cfg.address_map.decode(plan.addr), None, "{:#x}", plan.addr);
        }
    }

    #[test]
    fn throttle_is_deterministic_and_ratioed() {
        let hits = (0..10_000u64).filter(|c| throttled(1, 2, *c, 30)).count();
        assert!((2200..3800).contains(&hits), "≈30%: {hits}");
        for c in 0..100 {
            assert_eq!(throttled(1, 2, c, 30), throttled(1, 2, c, 30));
            assert!(!throttled(1, 2, c, 0));
        }
    }

    #[test]
    fn op_mix_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(OpMix::stores_only().pick(&mut rng), OpKind::Store);
        }
    }
}
