//! Constrained-random traffic generation.
//!
//! Each initiator harness executes a pre-generated, fully deterministic
//! schedule of [`TransactionPlan`]s derived from `(profile, seed,
//! initiator)`. Issue times are *absolute* cycles, so a one-cycle grant
//! perturbation in one design view does not cascade into a permanently
//! shifted stimulus — the property that keeps the RTL/BCA alignment
//! comparison meaningful.
//!
//! Since the constraint-model refactor, [`TrafficProfile`] is ergonomic
//! sugar: [`TrafficProfile::to_model`] lowers the knobs into a
//! [`ConstraintModel`](crate::ConstraintModel) and all actual generation
//! happens in its seeded solver. The lowering is draw-for-draw compatible
//! with the original ad-hoc generator, so recorded experiment tables are
//! unchanged.

use crate::constraint::ConstraintModel;
use stbus_protocol::{NodeConfig, OpKind, Opcode, TargetId, TransferSize};

/// Relative weights of operation kinds in generated traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of loads.
    pub load: u32,
    /// Weight of stores.
    pub store: u32,
    /// Weight of read-modify-writes.
    pub rmw: u32,
    /// Weight of swaps.
    pub swap: u32,
    /// Weight of flushes.
    pub flush: u32,
    /// Weight of purges.
    pub purge: u32,
}

impl OpMix {
    /// Loads and stores in equal measure — the bread-and-butter mix.
    pub fn balanced() -> Self {
        OpMix {
            load: 4,
            store: 4,
            rmw: 0,
            swap: 0,
            flush: 0,
            purge: 0,
        }
    }

    /// Every operation kind, weighted toward loads/stores but with the
    /// rare kinds frequent enough that every initiator exercises each of
    /// them in a modest run.
    pub fn full() -> Self {
        OpMix {
            load: 5,
            store: 5,
            rmw: 2,
            swap: 2,
            flush: 2,
            purge: 2,
        }
    }

    /// Stores only (used by directed write phases).
    pub fn stores_only() -> Self {
        OpMix {
            load: 0,
            store: 1,
            rmw: 0,
            swap: 0,
            flush: 0,
            purge: 0,
        }
    }

    /// Loads only.
    pub fn loads_only() -> Self {
        OpMix {
            load: 1,
            store: 0,
            rmw: 0,
            swap: 0,
            flush: 0,
            purge: 0,
        }
    }

    /// The weights as the constraint model's ordered kind distribution.
    /// The fixed order is the solver's draw order — it must never change,
    /// or every recorded seed would produce different traffic.
    pub fn weighted_kinds(&self) -> Vec<(OpKind, u32)> {
        vec![
            (OpKind::Load, self.load),
            (OpKind::Store, self.store),
            (OpKind::ReadModifyWrite, self.rmw),
            (OpKind::Swap, self.swap),
            (OpKind::Flush, self.flush),
            (OpKind::Purge, self.purge),
        ]
    }
}

/// The knobs of one initiator's random traffic.
#[derive(Clone, Debug)]
pub struct TrafficProfile {
    /// Number of transactions to issue.
    pub n_transactions: usize,
    /// Mean gap (cycles) between scheduled issues; 0 = saturate.
    pub mean_gap: u64,
    /// Operation-kind weights.
    pub op_mix: OpMix,
    /// Allowed transfer sizes (filtered to protocol-legal ones).
    pub sizes: Vec<TransferSize>,
    /// Targets this initiator talks to (uniform choice). Empty = all.
    pub targets: Vec<TargetId>,
    /// Percent (0–100) of transactions grouped into 2-packet locked
    /// chunks.
    pub chunk_percent: u32,
    /// Percent (0–100) of transactions aimed at an unmapped address.
    pub unmapped_percent: u32,
    /// Request priority hint.
    pub pri: u8,
    /// Percent (0–100) of cycles on which the initiator throttles its
    /// response acceptance (`r_gnt` low).
    pub r_gnt_throttle_percent: u32,
    /// Size in bytes of the per-target address window the traffic stays
    /// inside (small windows create read-after-write interactions).
    pub window: u64,
}

impl Default for TrafficProfile {
    fn default() -> Self {
        TrafficProfile {
            n_transactions: 50,
            mean_gap: 4,
            op_mix: OpMix::balanced(),
            sizes: vec![TransferSize::B4, TransferSize::B8, TransferSize::B16],
            targets: Vec::new(),
            chunk_percent: 0,
            unmapped_percent: 0,
            pri: 0,
            r_gnt_throttle_percent: 0,
            window: 4096,
        }
    }
}

/// One planned transaction of an initiator's schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransactionPlan {
    /// Earliest absolute cycle to present the first cell.
    pub issue_cycle: u64,
    /// The operation.
    pub opcode: Opcode,
    /// Transfer address (size-aligned; may be unmapped on purpose).
    pub addr: u64,
    /// Store payload (empty for dataless requests).
    pub payload: Vec<u8>,
    /// Chunk lock flag.
    pub lock: bool,
    /// Priority hint.
    pub pri: u8,
    /// Whether the plan deliberately targets an unmapped address.
    pub expect_error: bool,
}

impl TrafficProfile {
    /// Lowers the profile into the declarative [`ConstraintModel`] it is
    /// sugar for. Uniform choices become unit weights and the mean gap
    /// becomes the `0..=2·mean` range, preserving the historical
    /// generator's draw sequence exactly.
    pub fn to_model(&self) -> ConstraintModel {
        ConstraintModel {
            n_transactions: self.n_transactions,
            kinds: self.op_mix.weighted_kinds(),
            sizes: self.sizes.iter().map(|&s| (s, 1)).collect(),
            targets: self.targets.iter().map(|&t| (t, 1)).collect(),
            gap_min: 0,
            gap_max: self.mean_gap * 2,
            chunk_percent: self.chunk_percent,
            unmapped_percent: self.unmapped_percent,
            pri: self.pri,
            r_gnt_throttle_percent: self.r_gnt_throttle_percent,
            window: self.window,
            constraints: Vec::new(),
        }
    }
}

/// Generates the deterministic schedule for one initiator.
///
/// The same `(profile, config, initiator, seed)` always produces the same
/// plans — the paper's "same test cases … with same seeds" requirement.
/// This is a thin wrapper over the constraint solver; directed callers
/// keep the profile vocabulary while everything runs on the model.
pub fn generate_plans(
    profile: &TrafficProfile,
    config: &NodeConfig,
    initiator: usize,
    seed: u64,
) -> Vec<TransactionPlan> {
    profile.to_model().solve(config, initiator, seed)
}

/// A pure per-cycle throttle decision: deterministic across views.
pub(crate) fn throttled(seed: u64, salt: u64, cycle: u64, percent: u32) -> bool {
    if percent == 0 {
        return false;
    }
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(cycle.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let h = x ^ (x >> 29);
    (h % 100) < percent as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::ProtocolType;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile::default();
        let a = generate_plans(&p, &cfg, 0, 42);
        let b = generate_plans(&p, &cfg, 0, 42);
        assert_eq!(a, b);
        let c = generate_plans(&p, &cfg, 0, 43);
        assert_ne!(a, c, "different seed, different schedule");
        let d = generate_plans(&p, &cfg, 1, 42);
        assert_ne!(a, d, "different initiator, different schedule");
    }

    #[test]
    fn plans_respect_protocol_and_alignment() {
        let cfg = NodeConfig::builder("t1")
            .protocol(ProtocolType::Type1)
            .bus_bytes(4)
            .build()
            .unwrap();
        let p = TrafficProfile {
            op_mix: OpMix::full(),
            sizes: TransferSize::ALL.to_vec(),
            n_transactions: 100,
            ..TrafficProfile::default()
        };
        for plan in generate_plans(&p, &cfg, 0, 7) {
            assert!(
                plan.opcode.legal_for(ProtocolType::Type1),
                "{:?}",
                plan.opcode
            );
            assert_eq!(plan.addr % plan.opcode.size().bytes() as u64, 0);
            if plan.opcode.has_request_data() {
                assert_eq!(plan.payload.len(), plan.opcode.size().bytes());
            } else {
                assert!(plan.payload.is_empty());
            }
        }
    }

    #[test]
    fn issue_cycles_are_nondecreasing() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            n_transactions: 60,
            mean_gap: 3,
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&p, &cfg, 2, 99);
        assert_eq!(plans.len(), 60);
        for w in plans.windows(2) {
            assert!(w[0].issue_cycle <= w[1].issue_cycle);
        }
    }

    #[test]
    fn chunks_come_in_pairs_on_one_target() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            n_transactions: 40,
            chunk_percent: 100,
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&p, &cfg, 0, 5);
        let mut k = 0;
        while k < plans.len() {
            if plans[k].lock {
                assert!(k + 1 < plans.len(), "lock must be followed by closer");
                assert!(!plans[k + 1].lock);
                assert_eq!(
                    cfg.address_map.decode(plans[k].addr),
                    cfg.address_map.decode(plans[k + 1].addr),
                    "chunk stays on one target"
                );
                k += 2;
            } else {
                k += 1;
            }
        }
        assert!(plans.iter().any(|p| p.lock), "chunks were generated");
    }

    #[test]
    fn unmapped_plans_decode_to_none() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            n_transactions: 50,
            unmapped_percent: 50,
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&p, &cfg, 0, 11);
        let erroring: Vec<_> = plans.iter().filter(|p| p.expect_error).collect();
        assert!(!erroring.is_empty());
        for plan in erroring {
            assert_eq!(cfg.address_map.decode(plan.addr), None, "{:#x}", plan.addr);
        }
    }

    #[test]
    fn throttle_is_deterministic_and_ratioed() {
        let hits = (0..10_000u64).filter(|c| throttled(1, 2, *c, 30)).count();
        assert!((2200..3800).contains(&hits), "≈30%: {hits}");
        for c in 0..100 {
            assert_eq!(throttled(1, 2, c, 30), throttled(1, 2, c, 30));
            assert!(!throttled(1, 2, c, 0));
        }
    }

    #[test]
    fn op_mix_respects_zero_weights() {
        let cfg = NodeConfig::reference();
        let p = TrafficProfile {
            op_mix: OpMix::stores_only(),
            n_transactions: 100,
            ..TrafficProfile::default()
        };
        for plan in generate_plans(&p, &cfg, 0, 3) {
            assert_eq!(plan.opcode.kind(), OpKind::Store);
        }
    }

    #[test]
    fn lowering_preserves_every_knob() {
        let p = TrafficProfile {
            n_transactions: 9,
            mean_gap: 5,
            op_mix: OpMix::full(),
            sizes: vec![TransferSize::B8],
            targets: vec![TargetId(1)],
            chunk_percent: 30,
            unmapped_percent: 10,
            pri: 2,
            r_gnt_throttle_percent: 15,
            window: 512,
        };
        let m = p.to_model();
        assert_eq!(m.n_transactions, 9);
        assert_eq!(m.gap_min, 0);
        assert_eq!(m.gap_max, 10);
        assert_eq!(m.kinds, OpMix::full().weighted_kinds());
        assert_eq!(m.sizes, vec![(TransferSize::B8, 1)]);
        assert_eq!(m.targets, vec![(TargetId(1), 1)]);
        assert_eq!(m.chunk_percent, 30);
        assert_eq!(m.unmapped_percent, 10);
        assert_eq!(m.pri, 2);
        assert_eq!(m.r_gnt_throttle_percent, 15);
        assert_eq!(m.window, 512);
        assert!(m.constraints.is_empty());
    }
}
