//! The initiator harness (BFM): drives constrained-random request traffic
//! and consumes responses, exactly like the paper's CATG harnesses.

use crate::record::CycleRecord;
use crate::traffic::{throttled, TransactionPlan};
use stbus_protocol::packet::PacketParams;
use stbus_protocol::{
    InitiatorId, InitiatorPortIn, NodeConfig, Opcode, ProtocolType, RequestPacket, RspKind,
    TransactionId,
};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct PendingTx {
    tid: TransactionId,
    opcode: Opcode,
    addr: u64,
    expect_error: bool,
}

/// Per-initiator completion statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InitiatorStats {
    /// Request packets fully granted.
    pub issued: u64,
    /// Response packets fully received.
    pub completed: u64,
    /// Responses that carried an error flag.
    pub errors: u64,
    /// Sum over completed transactions of (completion − issue) cycles.
    pub total_latency: u64,
}

/// A bus-functional model of one initiator.
///
/// The BFM is a Moore machine: its cycle-*N* outputs depend only on what
/// it observed up to cycle *N−1*, which is what makes the closed loop
/// around either DUT view deterministic.
#[derive(Debug)]
pub struct InitiatorBfm {
    index: usize,
    params: PacketParams,
    protocol: ProtocolType,
    plans: VecDeque<TransactionPlan>,
    current: Option<(RequestPacket, usize, bool, u64)>, // packet, cell idx, expect_error, start cycle
    /// Type 3: tid slots; `Some` while outstanding.
    tid_slots: Vec<Option<PendingTx>>,
    /// Ordered protocols: outstanding in issue order.
    pending_fifo: VecDeque<PendingTx>,
    /// Type 3: rotating allocation cursor, so tid values are a pure
    /// function of issue order (not of response timing) and a one-cycle
    /// completion shift cannot cascade into a different stimulus.
    next_tid: usize,
    issue_cycles: std::collections::HashMap<u8, u64>,
    rsp_cells: usize,
    seed: u64,
    throttle_percent: u32,
    stats: InitiatorStats,
    unexpected: Vec<String>,
}

impl InitiatorBfm {
    /// Builds the harness for initiator `index` with a pre-generated
    /// schedule.
    pub fn new(
        config: &NodeConfig,
        index: usize,
        plans: Vec<TransactionPlan>,
        seed: u64,
        throttle_percent: u32,
    ) -> Self {
        let tid_space = match config.protocol {
            ProtocolType::Type3 => config.max_outstanding.clamp(1, 256),
            _ => 1,
        };
        InitiatorBfm {
            index,
            params: PacketParams {
                bus_bytes: config.bus_bytes,
                protocol: config.protocol,
                endianness: config.endianness,
            },
            protocol: config.protocol,
            plans: plans.into(),
            current: None,
            tid_slots: vec![None; tid_space],
            pending_fifo: VecDeque::new(),
            next_tid: 0,
            issue_cycles: std::collections::HashMap::new(),
            rsp_cells: 0,
            seed,
            throttle_percent,
            stats: InitiatorStats::default(),
            unexpected: Vec::new(),
        }
    }

    /// The port index this BFM drives.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The statistics so far.
    pub fn stats(&self) -> InitiatorStats {
        self.stats
    }

    /// Unexpected observations (responses that contradict expectations).
    pub fn anomalies(&self) -> &[String] {
        &self.unexpected
    }

    /// True when the schedule is exhausted and no transaction is
    /// outstanding.
    pub fn done(&self) -> bool {
        self.plans.is_empty()
            && self.current.is_none()
            && self.tid_slots.iter().all(Option::is_none)
            && self.pending_fifo.is_empty()
    }

    fn allocate_tid(&mut self) -> Option<TransactionId> {
        match self.protocol {
            ProtocolType::Type3 => {
                let k = self.next_tid;
                if self.tid_slots[k].is_none() {
                    self.next_tid = (k + 1) % self.tid_slots.len();
                    Some(TransactionId(k as u8))
                } else {
                    None // wait for the rotating slot to free
                }
            }
            ProtocolType::Type1 => {
                // No split transactions: one at a time.
                self.pending_fifo.is_empty().then_some(TransactionId(0))
            }
            ProtocolType::Type2 => Some(TransactionId(0)),
        }
    }

    /// Produces the cycle-`cycle` port inputs (Moore).
    pub fn drive(&mut self, cycle: u64) -> InitiatorPortIn {
        let mut out = InitiatorPortIn {
            r_gnt: !throttled(
                self.seed,
                31 * self.index as u64 + 1,
                cycle,
                self.throttle_percent,
            ),
            ..InitiatorPortIn::default()
        };
        if self.current.is_none() {
            let ready = self.plans.front().is_some_and(|p| p.issue_cycle <= cycle);
            if ready {
                if let Some(tid) = self.allocate_tid() {
                    let plan = self.plans.pop_front().expect("front checked");
                    let packet = RequestPacket::build(
                        plan.opcode,
                        plan.addr,
                        &plan.payload,
                        self.params,
                        InitiatorId(self.index as u8),
                        tid,
                        plan.pri,
                        plan.lock,
                    )
                    .expect("generated plans are protocol-legal");
                    self.current = Some((packet, 0, plan.expect_error, cycle));
                }
            }
        }
        if let Some((packet, idx, _, _)) = &self.current {
            out.req = true;
            out.cell = packet.cells()[*idx];
        }
        out
    }

    /// Digests the cycle's record (call after the DUT stepped).
    pub fn observe(&mut self, rec: &CycleRecord) {
        // Request handshake.
        if rec.request_fires(crate::record::PortId::Initiator(self.index)) {
            let (packet, idx, expect_error, start) =
                self.current.as_mut().expect("granted while driving");
            *idx += 1;
            if *idx == packet.len() {
                let pending = PendingTx {
                    tid: packet.tid(),
                    opcode: packet.opcode(),
                    addr: packet.addr(),
                    expect_error: *expect_error,
                };
                self.issue_cycles.insert(pending.tid.0, *start);
                let slot = pending.tid.0 as usize;
                match self.protocol {
                    ProtocolType::Type3 => {
                        self.tid_slots[slot] = Some(pending);
                    }
                    _ => self.pending_fifo.push_back(pending),
                }
                self.stats.issued += 1;
                self.current = None;
            }
        }
        // Response handshake.
        let (r_req, r_cell, r_gnt) = rec.init_response(self.index);
        if r_req && r_gnt {
            self.rsp_cells += 1;
            if r_cell.eop {
                self.rsp_cells = 0;
                let pending = match self.protocol {
                    ProtocolType::Type3 => {
                        let slot = self.tid_slots.get_mut(r_cell.tid.0 as usize);
                        match slot {
                            Some(s) if s.is_some() => s.take(),
                            _ => {
                                self.unexpected.push(format!(
                                    "cycle {}: response with unknown tid {}",
                                    rec.cycle, r_cell.tid
                                ));
                                None
                            }
                        }
                    }
                    _ => self.pending_fifo.pop_front(),
                };
                if let Some(p) = pending {
                    self.stats.completed += 1;
                    let is_err = r_cell.kind == RspKind::Error;
                    if is_err {
                        self.stats.errors += 1;
                    }
                    if is_err != p.expect_error {
                        self.unexpected.push(format!(
                            "cycle {}: {} at {:#x} expected_error={} got_error={}",
                            rec.cycle, p.opcode, p.addr, p.expect_error, is_err
                        ));
                    }
                    if let Some(start) = self.issue_cycles.remove(&p.tid.0) {
                        self.stats.total_latency += rec.cycle.saturating_sub(start);
                    }
                } else if self.protocol != ProtocolType::Type3 {
                    self.unexpected
                        .push(format!("cycle {}: orphan response", rec.cycle));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CycleRecord;
    use crate::traffic::{generate_plans, TrafficProfile};
    use stbus_protocol::{DutInputs, DutOutputs, NodeConfig, RspCell};

    fn bfm(cfg: &NodeConfig, n: usize) -> InitiatorBfm {
        let profile = TrafficProfile {
            n_transactions: n,
            mean_gap: 0,
            ..TrafficProfile::default()
        };
        InitiatorBfm::new(cfg, 0, generate_plans(&profile, cfg, 0, 1), 1, 0)
    }

    fn record_with(
        cfg: &NodeConfig,
        inputs: DutInputs,
        f: impl FnOnce(&mut DutOutputs),
    ) -> CycleRecord {
        let mut outputs = DutOutputs::idle(cfg);
        f(&mut outputs);
        CycleRecord {
            cycle: 1,
            inputs,
            outputs,
        }
    }

    #[test]
    fn drives_first_plan_when_due() {
        let cfg = NodeConfig::reference();
        let mut b = bfm(&cfg, 3);
        let p = b.drive(1);
        assert!(p.req);
        assert!(p.r_gnt);
        assert!(!b.done());
    }

    #[test]
    fn grant_advances_and_completion_frees_tid() {
        let cfg = NodeConfig::reference();
        let mut b = bfm(&cfg, 1);
        let pin = b.drive(1);
        assert!(pin.req);
        let tid = pin.cell.tid;

        // Grant every cell of the request.
        let mut guard = 0;
        loop {
            let pin = b.drive(1 + guard);
            if !pin.req {
                break;
            }
            let mut inputs = DutInputs::idle(&cfg);
            inputs.initiator[0] = pin;
            let rec = record_with(&cfg, inputs, |o| o.initiator[0].gnt = true);
            b.observe(&rec);
            guard += 1;
            assert!(guard < 20, "request should complete");
        }
        assert_eq!(b.stats().issued, 1);
        assert!(!b.done(), "response still outstanding");

        // Deliver the response.
        let mut inputs = DutInputs::idle(&cfg);
        inputs.initiator[0] = b.drive(10);
        let rec = record_with(&cfg, inputs, |o| {
            o.initiator[0].r_req = true;
            o.initiator[0].r_cell = RspCell::ok(InitiatorId(0), tid, true);
        });
        b.observe(&rec);
        assert_eq!(b.stats().completed, 1);
        assert!(b.done());
        assert!(b.anomalies().is_empty(), "{:?}", b.anomalies());
    }

    #[test]
    fn unknown_tid_is_flagged() {
        let cfg = NodeConfig::reference();
        let mut b = bfm(&cfg, 1);
        let mut inputs = DutInputs::idle(&cfg);
        inputs.initiator[0] = b.drive(1);
        let rec = record_with(&cfg, inputs, |o| {
            o.initiator[0].r_req = true;
            o.initiator[0].r_cell = RspCell::ok(InitiatorId(0), TransactionId(3), true);
        });
        b.observe(&rec);
        assert!(!b.anomalies().is_empty());
    }

    #[test]
    fn respects_issue_schedule() {
        let cfg = NodeConfig::reference();
        let profile = TrafficProfile {
            n_transactions: 1,
            mean_gap: 0,
            ..TrafficProfile::default()
        };
        let mut plans = generate_plans(&profile, &cfg, 0, 1);
        plans[0].issue_cycle = 50;
        let mut b = InitiatorBfm::new(&cfg, 0, plans, 1, 0);
        assert!(!b.drive(10).req, "too early");
        assert!(b.drive(50).req);
    }

    #[test]
    fn latency_statistics_accumulate() {
        let cfg = NodeConfig::reference();
        let mut b = bfm(&cfg, 1);
        let pin = b.drive(1);
        let tid = pin.cell.tid;
        // Granted at cycle 1, response at cycle 9 -> latency 8.
        let mut inputs = DutInputs::idle(&cfg);
        inputs.initiator[0] = pin;
        let rec = record_with(&cfg, inputs, |o| o.initiator[0].gnt = true);
        b.observe(&CycleRecord { cycle: 1, ..rec });
        let mut inputs = DutInputs::idle(&cfg);
        inputs.initiator[0] = b.drive(9);
        let rec = record_with(&cfg, inputs, |o| {
            o.initiator[0].r_req = true;
            o.initiator[0].r_cell = RspCell::ok(InitiatorId(0), tid, true);
        });
        b.observe(&CycleRecord { cycle: 9, ..rec });
        assert_eq!(b.stats().total_latency, 8);
        assert_eq!(b.stats().completed, 1);
    }

    #[test]
    fn tid_rotation_is_timing_independent() {
        // Two harnesses with identical plans allocate identical tids even
        // if their responses complete in different orders.
        let cfg = NodeConfig::reference();
        let profile = TrafficProfile {
            n_transactions: 4,
            mean_gap: 0,
            // Loads only: request packets are single-cell, so each grant
            // completes one issue regardless of the RNG stream's sizes.
            op_mix: crate::traffic::OpMix::loads_only(),
            ..TrafficProfile::default()
        };
        let plans = generate_plans(&profile, &cfg, 0, 3);
        let mut a = InitiatorBfm::new(&cfg, 0, plans.clone(), 1, 0);
        let mut b = InitiatorBfm::new(&cfg, 0, plans, 1, 0);
        let grant_next = |h: &mut InitiatorBfm, cycle: u64| -> Option<u8> {
            let pin = h.drive(cycle);
            if !pin.req {
                return None;
            }
            let tid = pin.cell.tid.0;
            let mut inputs = DutInputs::idle(&cfg);
            inputs.initiator[0] = pin;
            let rec = record_with(&cfg, inputs, |o| o.initiator[0].gnt = true);
            h.observe(&CycleRecord { cycle, ..rec });
            Some(tid)
        };
        let t_a: Vec<_> = (1..=4).filter_map(|c| grant_next(&mut a, c)).collect();
        let t_b: Vec<_> = (1..=4).filter_map(|c| grant_next(&mut b, c)).collect();
        assert_eq!(t_a, t_b);
        assert_eq!(t_a, vec![0, 1, 2, 3], "rotating allocation");
    }

    #[test]
    fn throttle_lowers_r_gnt_sometimes() {
        let cfg = NodeConfig::reference();
        let profile = TrafficProfile::default();
        let mut b = InitiatorBfm::new(&cfg, 0, generate_plans(&profile, &cfg, 0, 1), 9, 50);
        let low = (0..200).filter(|c| !b.drive(*c).r_gnt).count();
        assert!((50..150).contains(&low), "≈50%: {low}");
    }
}
