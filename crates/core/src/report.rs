//! Textual run reports.
//!
//! Paper §4: "For each test file associated with the test seed, a
//! verification report and a functional coverage one are generated."
//! These renderers produce those two documents from a [`RunResult`].

use crate::testbench::RunResult;
use std::fmt::Write as _;

impl RunResult {
    /// Renders the verification report: configuration of the run, checker
    /// rule tallies, scoreboard totals, per-initiator statistics and every
    /// recorded failure.
    pub fn verification_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== verification report ===");
        let _ = writeln!(out, "test    : {}", self.test);
        let _ = writeln!(out, "seed    : {}", self.seed);
        let _ = writeln!(out, "view    : {}", self.view);
        let _ = writeln!(out, "cycles  : {}", self.cycles);
        let _ = writeln!(out, "tx done : {}", self.transactions);
        let _ = writeln!(
            out,
            "verdict : {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        let _ = writeln!(out, "\nprotocol checks (passed evaluations per rule):");
        for (rule, n) in &self.checker.checks_passed {
            let _ = writeln!(
                out,
                "  {:<14} {:>8}   {}",
                rule.to_string(),
                n,
                rule.description()
            );
        }
        let _ = writeln!(
            out,
            "\nscoreboard comparisons passed: {}",
            self.scoreboard_checks
        );
        let _ = writeln!(out, "\nper-initiator statistics:");
        for (i, s) in self.stats.iter().enumerate() {
            let mean = if s.completed == 0 {
                0.0
            } else {
                s.total_latency as f64 / s.completed as f64
            };
            let _ = writeln!(
                out,
                "  init{:<2} issued {:>5}  completed {:>5}  errors {:>4}  mean latency {:>7.1}",
                i, s.issued, s.completed, s.errors, mean
            );
        }
        if !self.checker.violations.is_empty() || self.checker.suppressed > 0 {
            let _ = writeln!(
                out,
                "\nviolations ({} recorded, {} suppressed):",
                self.checker.violations.len(),
                self.checker.suppressed
            );
            for v in &self.checker.violations {
                let _ = writeln!(out, "  {v}");
            }
        }
        if !self.scoreboard_errors.is_empty() {
            let _ = writeln!(out, "\nscoreboard errors:");
            for e in &self.scoreboard_errors {
                let _ = writeln!(out, "  {e}");
            }
        }
        if !self.anomalies.is_empty() {
            let _ = writeln!(out, "\nharness anomalies:");
            for a in &self.anomalies {
                let _ = writeln!(out, "  {a}");
            }
        }
        if !self.completed {
            let _ = writeln!(out, "\nWARNING: run hit the cycle limit before draining");
        }
        out
    }

    /// Renders the functional-coverage report: per-group percentages and
    /// the list of holes.
    pub fn coverage_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== functional coverage report ===");
        let _ = writeln!(
            out,
            "test : {}   seed {}   view {}",
            self.test, self.seed, self.view
        );
        let _ = write!(out, "{}", self.coverage);
        let holes = self.coverage.holes();
        if holes.is_empty() {
            let _ = writeln!(out, "coverage complete: every declared bin hit");
        } else {
            let _ = writeln!(out, "holes ({}):", holes.len());
            for h in holes {
                let _ = writeln!(out, "  {h}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tests_lib;
    use crate::{build_view, Testbench, TestbenchOptions};
    use stbus_protocol::{NodeConfig, ViewKind};

    #[test]
    fn reports_render_for_a_passing_run() {
        let cfg = NodeConfig::reference();
        let bench = Testbench::new(cfg.clone(), TestbenchOptions::default());
        let mut dut = build_view(&cfg, ViewKind::Bca);
        let result = bench.run(dut.as_mut(), &tests_lib::basic_read_write(10), 1);
        let v = result.verification_report();
        assert!(v.contains("verdict : PASS"));
        assert!(v.contains("R-EOP"));
        assert!(v.contains("per-initiator statistics"));
        let c = result.coverage_report();
        assert!(c.contains("functional coverage"));
        assert!(c.contains("holes") || c.contains("complete"));
    }

    #[test]
    fn failing_run_lists_violations() {
        use stbus_bca::{BcaBug, BcaNode, Fidelity};
        let cfg = NodeConfig::reference();
        let bench = Testbench::new(cfg.clone(), TestbenchOptions::default());
        let mut dut = BcaNode::new(cfg.clone(), Fidelity::Exact);
        dut.inject_bug(BcaBug::CorruptedOooTid);
        let result = bench.run(&mut dut, &tests_lib::out_of_order(20), 1);
        assert!(!result.passed());
        let v = result.verification_report();
        assert!(v.contains("verdict : FAIL"));
        assert!(v.contains("violations"));
        assert!(v.contains("R-TID"));
    }
}
