//! The *past flow*: the model owner's basic write-then-read testbench.
//!
//! Paper §2: "It was based on a very basic model of harnesses written in
//! SystemC and doing write then read operations towards a memory model.
//! The tests cases were directive … And a lot of checks were done
//! visually." This module reproduces that environment so experiment E2
//! can compare its bug-finding power against the common environment: a
//! single initiator, a directed write/write/read sequence per target, and
//! only a final readback comparison (no protocol checkers, no scoreboard,
//! no coverage).

use crate::record::CycleRecord;
use crate::target::{TargetBfm, TargetProfile};
use stbus_protocol::packet::{PacketParams, RequestPacket};
use stbus_protocol::{
    DutInputs, DutView, InitiatorId, NodeConfig, Opcode, TargetId, TransactionId, TransferSize,
};
use std::collections::VecDeque;

/// What the legacy flow concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LegacyOutcome {
    /// True when every readback matched (the only check this flow has).
    pub passed: bool,
    /// Readback mismatches, if any.
    pub mismatches: Vec<String>,
    /// Directed transactions executed.
    pub transactions: u64,
    /// Cycles consumed.
    pub cycles: u64,
}

/// The legacy write-then-read testbench.
#[derive(Clone, Debug)]
pub struct LegacyTestbench {
    config: NodeConfig,
    max_cycles: u64,
}

struct DirectedOp {
    packet: RequestPacket,
    /// `Some(expected)` when this is the checked readback.
    expect: Option<Vec<u8>>,
}

impl LegacyTestbench {
    /// A legacy bench for one configuration.
    pub fn new(config: NodeConfig) -> Self {
        LegacyTestbench {
            config,
            max_cycles: 20_000,
        }
    }

    fn params(&self) -> PacketParams {
        PacketParams {
            bus_bytes: self.config.bus_bytes,
            protocol: self.config.protocol,
            endianness: self.config.endianness,
        }
    }

    /// Builds the directed sequence: per target, a full-word write, a
    /// sub-word write into it, and a checked readback of the whole word.
    fn sequence(&self) -> Vec<DirectedOp> {
        let bus = self.config.bus_bytes;
        let word = TransferSize::from_bytes(bus.min(8)).expect("bus is a power of two");
        let word_bytes = word.bytes();
        let params = self.params();
        let mut ops = Vec::new();
        for t in 0..self.config.n_targets {
            let base = self
                .config
                .address_map
                .base_of(TargetId(t as u8))
                .unwrap_or(0)
                + 0x100;
            let p1: Vec<u8> = (0..word_bytes).map(|k| (0xA0 + k + t) as u8).collect();
            let mut expected = p1.clone();
            ops.push(DirectedOp {
                packet: RequestPacket::build(
                    Opcode::store(word),
                    base,
                    &p1,
                    params,
                    InitiatorId(0),
                    TransactionId(0),
                    0,
                    false,
                )
                .expect("directed op is legal"),
                expect: None,
            });
            // Sub-word write inside the word, when the bus allows one.
            if word_bytes >= 4 {
                let q = [0x5A, 0xC3];
                expected[2] = q[0];
                expected[3] = q[1];
                ops.push(DirectedOp {
                    packet: RequestPacket::build(
                        Opcode::store(TransferSize::B2),
                        base + 2,
                        &q,
                        params,
                        InitiatorId(0),
                        TransactionId(0),
                        0,
                        false,
                    )
                    .expect("directed op is legal"),
                    expect: None,
                });
            }
            ops.push(DirectedOp {
                packet: RequestPacket::build(
                    Opcode::load(word),
                    base,
                    &[],
                    params,
                    InitiatorId(0),
                    TransactionId(0),
                    0,
                    false,
                )
                .expect("directed op is legal"),
                expect: Some(expected),
            });
        }
        ops
    }

    /// Runs the directed flow against a DUT view.
    pub fn run(&self, dut: &mut dyn DutView) -> LegacyOutcome {
        dut.reset();
        let cfg = &self.config;
        let mut targets: Vec<TargetBfm> = (0..cfg.n_targets)
            .map(|t| TargetBfm::new(cfg, t, TargetProfile::fast(), 0xCAFE + t as u64))
            .collect();
        let mut ops: VecDeque<DirectedOp> = self.sequence().into();
        let total_ops = ops.len() as u64;
        let mut mismatches = Vec::new();
        let mut transactions = 0u64;

        let mut current: Option<(DirectedOp, usize)> = None;
        let mut awaiting: Option<DirectedOp> = None;
        let mut rsp_data: Vec<u8> = Vec::new();
        let mut cycle = 0u64;

        while cycle < self.max_cycles {
            if current.is_none() && awaiting.is_none() {
                match ops.pop_front() {
                    Some(op) => current = Some((op, 0)),
                    None => break,
                }
            }
            let mut inputs = DutInputs::idle(cfg);
            inputs.initiator[0].r_gnt = true;
            if let Some((op, idx)) = &current {
                inputs.initiator[0].req = true;
                inputs.initiator[0].cell = op.packet.cells()[*idx];
            }
            for (t, tg) in targets.iter_mut().enumerate() {
                inputs.target[t] = tg.drive(cycle);
            }
            let outputs = dut.step(&inputs);
            let rec = CycleRecord {
                cycle,
                inputs,
                outputs,
            };
            for tg in &mut targets {
                tg.observe(&rec);
            }

            // Advance the directed driver.
            if rec.request_fires(crate::record::PortId::Initiator(0)) {
                let (op, idx) = current.as_mut().expect("driving");
                *idx += 1;
                if *idx == op.packet.len() {
                    let (op, _) = current.take().expect("driving");
                    awaiting = Some(op);
                    rsp_data.clear();
                }
            }
            let (r_req, r_cell, r_gnt) = rec.init_response(0);
            if r_req && r_gnt {
                rsp_data.extend_from_slice(r_cell.data.lanes(cfg.bus_bytes));
                if r_cell.eop {
                    if let Some(op) = awaiting.take() {
                        transactions += 1;
                        if let Some(expected) = op.expect {
                            // The "visual" check of the old flow: the final
                            // readback only.
                            rsp_data.truncate(expected.len());
                            if rsp_data != expected {
                                mismatches.push(format!(
                                    "readback at {:#x}: expected {expected:02x?}, got {:02x?}",
                                    op.packet.addr(),
                                    rsp_data
                                ));
                            }
                        }
                    }
                }
            }
            cycle += 1;
        }

        LegacyOutcome {
            passed: mismatches.is_empty() && transactions == total_ops,
            mismatches,
            transactions,
            cycles: cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_bca::{BcaBug, BcaNode, Fidelity};
    use stbus_rtl::RtlNode;

    #[test]
    fn legacy_passes_on_clean_views() {
        let cfg = NodeConfig::reference();
        let legacy = LegacyTestbench::new(cfg.clone());
        let mut rtl = RtlNode::new(cfg.clone());
        let out = legacy.run(&mut rtl);
        assert!(out.passed, "{:?}", out.mismatches);
        let mut bca = BcaNode::new(cfg, Fidelity::Relaxed);
        let out = legacy.run(&mut bca);
        assert!(out.passed, "{:?}", out.mismatches);
        assert!(out.transactions >= 6);
    }

    #[test]
    fn legacy_catches_b1_only() {
        let cfg = NodeConfig::reference();
        let legacy = LegacyTestbench::new(cfg.clone());
        // B1 clobbers neighbors of sub-word stores: visible on readback.
        let mut b1 = BcaNode::new(cfg.clone(), Fidelity::Exact);
        b1.inject_bug(BcaBug::DroppedByteEnables);
        assert!(!legacy.run(&mut b1).passed);

        // The other four bugs slip straight through the old flow.
        for bug in [
            BcaBug::StuckLruState,
            BcaBug::CorruptedOooTid,
            BcaBug::ReorderedT2Responses,
            BcaBug::IgnoredChunkLock,
        ] {
            let mut node = BcaNode::new(cfg.clone(), Fidelity::Exact);
            node.inject_bug(bug);
            let out = legacy.run(&mut node);
            assert!(
                out.passed,
                "{bug} should evade the legacy flow: {:?}",
                out.mismatches
            );
        }
    }
}
