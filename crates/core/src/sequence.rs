//! Directed sequences: a blocking transactor for hand-written tests.
//!
//! The random twelve-test suite covers regression duty; sometimes an
//! engineer wants the paper's "specific test files … to test particular
//! features of the design" — a directed read/write sequence against one
//! view. [`SequenceRunner`] wraps any [`DutView`] together with
//! memory-model targets and exposes blocking `write`/`read`/`swap`
//! operations, each running the node for as many cycles as the operation
//! needs.
//!
//! # Example
//!
//! ```
//! use catg::SequenceRunner;
//! use stbus_protocol::{NodeConfig, ViewKind};
//!
//! # fn main() -> Result<(), catg::SequenceError> {
//! let config = NodeConfig::reference();
//! let dut = catg::build_view(&config, ViewKind::Bca);
//! let mut seq = SequenceRunner::new(config, dut);
//! seq.write(0x0000_0100, &[1, 2, 3, 4])?;
//! assert_eq!(seq.read(0x0000_0100, 4)?, vec![1, 2, 3, 4]);
//! # Ok(())
//! # }
//! ```

use crate::record::CycleRecord;
use crate::target::{TargetBfm, TargetProfile};
use stbus_protocol::packet::{PacketParams, RequestPacket};
use stbus_protocol::{
    BuildPacketError, DutInputs, DutView, InitiatorId, NodeConfig, OpKind, Opcode, RspCell,
    RspKind, TransactionId, TransferSize,
};
use std::fmt;

/// Why a directed operation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SequenceError {
    /// The data length is not a legal STBus transfer size.
    IllegalSize {
        /// The offending length.
        len: usize,
    },
    /// Packet construction failed (alignment, protocol legality…).
    Build(BuildPacketError),
    /// The node answered with an error response.
    ErrorResponse {
        /// The address of the failing operation.
        addr: u64,
    },
    /// The operation did not complete within the cycle budget.
    Timeout {
        /// Cycles waited.
        cycles: u64,
    },
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::IllegalSize { len } => {
                write!(f, "{len} bytes is not a legal transfer size")
            }
            SequenceError::Build(e) => write!(f, "cannot build packet: {e}"),
            SequenceError::ErrorResponse { addr } => {
                write!(f, "error response for access at {addr:#x}")
            }
            SequenceError::Timeout { cycles } => {
                write!(f, "operation timed out after {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SequenceError {}

impl From<BuildPacketError> for SequenceError {
    fn from(e: BuildPacketError) -> Self {
        SequenceError::Build(e)
    }
}

/// A blocking directed-test transactor around one DUT view.
pub struct SequenceRunner {
    config: NodeConfig,
    dut: Box<dyn DutView>,
    targets: Vec<TargetBfm>,
    params: PacketParams,
    initiator: usize,
    tid: u8,
    cycle: u64,
    timeout: u64,
}

impl SequenceRunner {
    /// Wraps a view with fast memory-model targets; operations issue from
    /// initiator port 0.
    pub fn new(config: NodeConfig, dut: Box<dyn DutView>) -> Self {
        let targets = (0..config.n_targets)
            .map(|t| TargetBfm::new(&config, t, TargetProfile::fast(), 0x5E9))
            .collect();
        SequenceRunner {
            params: PacketParams {
                bus_bytes: config.bus_bytes,
                protocol: config.protocol,
                endianness: config.endianness,
            },
            dut,
            targets,
            initiator: 0,
            tid: 0,
            cycle: 0,
            timeout: 1000,
            config,
        }
    }

    /// Issues operations from a different initiator port.
    pub fn set_initiator(&mut self, port: usize) {
        assert!(port < self.config.n_initiators, "port out of range");
        self.initiator = port;
    }

    /// Overrides the per-operation cycle budget (default 1000).
    pub fn set_timeout(&mut self, cycles: u64) {
        self.timeout = cycles.max(1);
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Recovers the wrapped view.
    pub fn into_dut(self) -> Box<dyn DutView> {
        self.dut
    }

    /// Writes `data` at `addr` (length must be a legal transfer size).
    ///
    /// # Errors
    ///
    /// See [`SequenceError`].
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), SequenceError> {
        let size = TransferSize::from_bytes(data.len())
            .ok_or(SequenceError::IllegalSize { len: data.len() })?;
        self.execute(Opcode::store(size), addr, data).map(|_| ())
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// See [`SequenceError`].
    pub fn read(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, SequenceError> {
        let size = TransferSize::from_bytes(len).ok_or(SequenceError::IllegalSize { len })?;
        self.execute(Opcode::load(size), addr, &[])
    }

    /// Atomically swaps `data` into `addr`, returning the old content.
    ///
    /// # Errors
    ///
    /// See [`SequenceError`].
    pub fn swap(&mut self, addr: u64, data: &[u8]) -> Result<Vec<u8>, SequenceError> {
        let size = TransferSize::from_bytes(data.len())
            .ok_or(SequenceError::IllegalSize { len: data.len() })?;
        self.execute(Opcode::new(OpKind::Swap, size), addr, data)
    }

    /// Runs one whole transaction to completion, returning response data.
    fn execute(
        &mut self,
        opcode: Opcode,
        addr: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, SequenceError> {
        let tid = TransactionId(self.tid);
        self.tid = self.tid.wrapping_add(1) % 4;
        let packet = RequestPacket::build(
            opcode,
            addr,
            payload,
            self.params,
            InitiatorId(self.initiator as u8),
            tid,
            0,
            false,
        )?;
        let mut cell_idx = 0usize;
        let mut rsp: Vec<RspCell> = Vec::new();
        let deadline = self.cycle + self.timeout;
        while self.cycle < deadline {
            let mut inputs = DutInputs::idle(&self.config);
            inputs.initiator[self.initiator].r_gnt = true;
            if cell_idx < packet.len() {
                inputs.initiator[self.initiator].req = true;
                inputs.initiator[self.initiator].cell = packet.cells()[cell_idx];
            }
            for (t, tg) in self.targets.iter_mut().enumerate() {
                inputs.target[t] = tg.drive(self.cycle);
            }
            let outputs = self.dut.step(&inputs);
            let rec = CycleRecord {
                cycle: self.cycle,
                inputs,
                outputs,
            };
            for tg in &mut self.targets {
                tg.observe(&rec);
            }
            self.cycle += 1;

            if rec.request_fires(crate::record::PortId::Initiator(self.initiator)) {
                cell_idx += 1;
            }
            let (r_req, r_cell, r_gnt) = rec.init_response(self.initiator);
            if r_req && r_gnt && r_cell.tid == tid {
                rsp.push(*r_cell);
                if r_cell.eop {
                    if rsp.iter().any(|c| c.kind == RspKind::Error) {
                        return Err(SequenceError::ErrorResponse { addr });
                    }
                    let mut data = Vec::new();
                    for c in &rsp {
                        data.extend_from_slice(c.data.lanes(self.config.bus_bytes));
                    }
                    data.truncate(opcode.size().bytes());
                    return Ok(if opcode.has_response_data() {
                        data
                    } else {
                        Vec::new()
                    });
                }
            }
        }
        Err(SequenceError::Timeout {
            cycles: self.timeout,
        })
    }
}

impl fmt::Debug for SequenceRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SequenceRunner")
            .field("config", &self.config.name)
            .field("initiator", &self.initiator)
            .field("cycle", &self.cycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_view;
    use stbus_protocol::ViewKind;

    fn runner(kind: ViewKind) -> SequenceRunner {
        let config = NodeConfig::reference();
        let dut = build_view(&config, kind);
        SequenceRunner::new(config, dut)
    }

    #[test]
    fn write_read_round_trip_on_both_views() {
        for kind in [ViewKind::Rtl, ViewKind::Bca] {
            let mut seq = runner(kind);
            seq.write(0x0000_0200, &[9, 8, 7, 6, 5, 4, 3, 2]).unwrap();
            assert_eq!(
                seq.read(0x0000_0200, 8).unwrap(),
                vec![9, 8, 7, 6, 5, 4, 3, 2],
                "{kind}"
            );
        }
    }

    #[test]
    fn swap_returns_old_value() {
        let mut seq = runner(ViewKind::Bca);
        seq.write(0x0100_0040, &[1, 1, 1, 1]).unwrap();
        let old = seq.swap(0x0100_0040, &[2, 2, 2, 2]).unwrap();
        assert_eq!(old, vec![1, 1, 1, 1]);
        assert_eq!(seq.read(0x0100_0040, 4).unwrap(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn unmapped_address_reports_error_response() {
        let mut seq = runner(ViewKind::Bca);
        let unmapped = NodeConfig::reference()
            .address_map
            .unmapped_address()
            .unwrap();
        let err = seq.read(unmapped, 8).unwrap_err();
        assert!(matches!(err, SequenceError::ErrorResponse { .. }));
        // The runner survives and keeps working.
        seq.write(0x0000_0300, &[5; 8]).unwrap();
        assert_eq!(seq.read(0x0000_0300, 8).unwrap(), vec![5; 8]);
    }

    #[test]
    fn illegal_size_and_misalignment_are_reported() {
        let mut seq = runner(ViewKind::Bca);
        assert!(matches!(
            seq.write(0, &[1, 2, 3]),
            Err(SequenceError::IllegalSize { len: 3 })
        ));
        assert!(matches!(
            seq.read(0x3, 8),
            Err(SequenceError::Build(BuildPacketError::Misaligned { .. }))
        ));
    }

    #[test]
    fn second_initiator_port_works() {
        let mut seq = runner(ViewKind::Rtl);
        seq.set_initiator(2);
        seq.write(0x0100_0000, &[0xAA; 8]).unwrap();
        assert_eq!(seq.read(0x0100_0000, 8).unwrap(), vec![0xAA; 8]);
        assert!(seq.cycles() > 0);
    }
}
