//! Port monitors: reassemble the cell-level handshakes into packets and
//! transactions, and feed every downstream component.

use crate::record::{CycleRecord, PortId};
use stbus_protocol::{ReqCell, RequestPacket, ResponsePacket, RspCell};

/// Which side of the node a port belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortSide {
    /// An initiator port (the initiator issues requests).
    Initiator,
    /// A target port (the node issues requests).
    Target,
}

impl From<PortId> for PortSide {
    fn from(p: PortId) -> Self {
        match p {
            PortId::Initiator(_) => PortSide::Initiator,
            PortId::Target(_) => PortSide::Target,
        }
    }
}

/// An observation produced by a [`PortMonitor`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonitorEvent {
    /// A request cell transferred.
    RequestCell {
        /// Where.
        port: PortId,
        /// When.
        cycle: u64,
        /// The transferred cell.
        cell: ReqCell,
    },
    /// A complete request packet transferred.
    RequestPacket {
        /// Where.
        port: PortId,
        /// Cycle of the `eop` cell.
        cycle: u64,
        /// Cycle of the first cell.
        start: u64,
        /// The packet.
        packet: RequestPacket,
    },
    /// A response cell transferred.
    ResponseCell {
        /// Where.
        port: PortId,
        /// When.
        cycle: u64,
        /// The transferred cell.
        cell: RspCell,
    },
    /// A complete response packet transferred.
    ResponsePacket {
        /// Where.
        port: PortId,
        /// Cycle of the `eop` cell.
        cycle: u64,
        /// Cycle of the first cell.
        start: u64,
        /// The packet.
        packet: ResponsePacket,
        /// For initiator ports: the responder that delivered it —
        /// `Some(t)` for target port `t`, `None` for the node's internal
        /// error responder. Always `None` at target ports (a target is its
        /// own responder).
        responder: Option<usize>,
    },
}

/// Traffic totals of one port.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortTraffic {
    /// Request cells transferred.
    pub req_cells: u64,
    /// Request packets completed.
    pub req_packets: u64,
    /// Response cells transferred.
    pub rsp_cells: u64,
    /// Response packets completed.
    pub rsp_packets: u64,
}

/// Collects the transfer stream of one port into packets.
#[derive(Debug)]
pub struct PortMonitor {
    port: PortId,
    req_cells: Vec<ReqCell>,
    req_start: u64,
    rsp_cells: Vec<RspCell>,
    rsp_start: u64,
    rsp_responder: Option<usize>,
    traffic: PortTraffic,
}

impl PortMonitor {
    /// A monitor for one port.
    pub fn new(port: PortId) -> Self {
        PortMonitor {
            port,
            req_cells: Vec::new(),
            req_start: 0,
            rsp_cells: Vec::new(),
            rsp_start: 0,
            rsp_responder: None,
            traffic: PortTraffic::default(),
        }
    }

    /// The monitored port.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Transfer totals.
    pub fn traffic(&self) -> PortTraffic {
        self.traffic
    }

    /// For an initiator port: which responder delivered a response cell
    /// this cycle (scans the target ports of the record).
    fn responder_of(&self, rec: &CycleRecord, initiator: usize) -> Option<usize> {
        (0..rec.inputs.target.len()).find(|t| {
            let (r_req, cell, r_gnt) = rec.target_response(*t);
            r_req && r_gnt && cell.src.0 as usize == initiator
        })
    }

    /// Digests one cycle, appending events to `events`.
    pub fn observe(&mut self, rec: &CycleRecord, events: &mut Vec<MonitorEvent>) {
        // Request stream.
        if rec.request_fires(self.port) {
            let (_, cell, _) = rec.request_at(self.port);
            let cell = *cell;
            if self.req_cells.is_empty() {
                self.req_start = rec.cycle;
            }
            self.traffic.req_cells += 1;
            events.push(MonitorEvent::RequestCell {
                port: self.port,
                cycle: rec.cycle,
                cell,
            });
            self.req_cells.push(cell);
            if cell.eop {
                let packet = RequestPacket::from_cells(std::mem::take(&mut self.req_cells));
                self.traffic.req_packets += 1;
                events.push(MonitorEvent::RequestPacket {
                    port: self.port,
                    cycle: rec.cycle,
                    start: self.req_start,
                    packet,
                });
            }
        }
        // Response stream.
        if rec.response_fires(self.port) {
            let (_, cell, _) = rec.response_at(self.port);
            let cell = *cell;
            if self.rsp_cells.is_empty() {
                self.rsp_start = rec.cycle;
                self.rsp_responder = match self.port {
                    PortId::Initiator(i) => self.responder_of(rec, i),
                    PortId::Target(_) => None,
                };
            }
            self.traffic.rsp_cells += 1;
            events.push(MonitorEvent::ResponseCell {
                port: self.port,
                cycle: rec.cycle,
                cell,
            });
            self.rsp_cells.push(cell);
            if cell.eop {
                let packet = ResponsePacket::from_cells(std::mem::take(&mut self.rsp_cells));
                self.traffic.rsp_packets += 1;
                events.push(MonitorEvent::ResponsePacket {
                    port: self.port,
                    cycle: rec.cycle,
                    start: self.rsp_start,
                    packet,
                    responder: self.rsp_responder.take(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::packet::PacketParams;
    use stbus_protocol::{
        DutInputs, DutOutputs, InitiatorId, NodeConfig, Opcode, TransactionId, TransferSize,
    };

    fn cfg() -> NodeConfig {
        NodeConfig::reference()
    }

    fn params(c: &NodeConfig) -> PacketParams {
        PacketParams {
            bus_bytes: c.bus_bytes,
            protocol: c.protocol,
            endianness: c.endianness,
        }
    }

    #[test]
    fn assembles_multicell_request_packet() {
        let c = cfg();
        let packet = RequestPacket::build(
            Opcode::store(TransferSize::B16),
            0x40,
            &(0..16).collect::<Vec<u8>>(),
            params(&c),
            InitiatorId(0),
            TransactionId(2),
            0,
            false,
        )
        .unwrap();
        let mut mon = PortMonitor::new(PortId::Initiator(0));
        let mut events = Vec::new();
        for (k, cell) in packet.cells().iter().enumerate() {
            let mut inputs = DutInputs::idle(&c);
            inputs.initiator[0].req = true;
            inputs.initiator[0].cell = *cell;
            let mut outputs = DutOutputs::idle(&c);
            outputs.initiator[0].gnt = true;
            mon.observe(
                &CycleRecord {
                    cycle: 10 + k as u64,
                    inputs,
                    outputs,
                },
                &mut events,
            );
        }
        let pkt_events: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::RequestPacket { .. }))
            .collect();
        assert_eq!(pkt_events.len(), 1);
        if let MonitorEvent::RequestPacket {
            packet: p,
            start,
            cycle,
            ..
        } = pkt_events[0]
        {
            assert_eq!(p, &packet);
            assert_eq!(*start, 10);
            assert_eq!(*cycle, 11);
        }
        assert_eq!(mon.traffic().req_cells, 2);
        assert_eq!(mon.traffic().req_packets, 1);
    }

    #[test]
    fn identifies_responder_target() {
        let c = cfg();
        let mut mon = PortMonitor::new(PortId::Initiator(1));
        let mut events = Vec::new();
        let cell = stbus_protocol::RspCell::ok(InitiatorId(1), TransactionId(0), true);
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[1].r_gnt = true;
        inputs.target[1].r_req = true;
        inputs.target[1].r_cell = cell;
        let mut outputs = DutOutputs::idle(&c);
        outputs.initiator[1].r_req = true;
        outputs.initiator[1].r_cell = cell;
        outputs.target[1].r_gnt = true;
        mon.observe(
            &CycleRecord {
                cycle: 3,
                inputs,
                outputs,
            },
            &mut events,
        );
        match events.last().expect("packet event") {
            MonitorEvent::ResponsePacket { responder, .. } => assert_eq!(*responder, Some(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn internal_responses_have_no_responder() {
        let c = cfg();
        let mut mon = PortMonitor::new(PortId::Initiator(0));
        let mut events = Vec::new();
        let cell = stbus_protocol::RspCell::error(InitiatorId(0), TransactionId(0), true);
        let mut inputs = DutInputs::idle(&c);
        inputs.initiator[0].r_gnt = true;
        let mut outputs = DutOutputs::idle(&c);
        outputs.initiator[0].r_req = true;
        outputs.initiator[0].r_cell = cell;
        mon.observe(
            &CycleRecord {
                cycle: 3,
                inputs,
                outputs,
            },
            &mut events,
        );
        match events.last().expect("packet event") {
            MonitorEvent::ResponsePacket { responder, .. } => assert_eq!(*responder, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idle_cycles_produce_nothing() {
        let c = cfg();
        let mut mon = PortMonitor::new(PortId::Target(0));
        let mut events = Vec::new();
        mon.observe(
            &CycleRecord {
                cycle: 0,
                inputs: DutInputs::idle(&c),
                outputs: DutOutputs::idle(&c),
            },
            &mut events,
        );
        assert!(events.is_empty());
        assert_eq!(mon.traffic(), PortTraffic::default());
    }
}
