//! Protocol checkers: the automatic interface checks of the common
//! environment, enforcing the [`stbus_protocol::rules`] catalogue at every
//! port of whichever design view is plugged in.

use crate::record::{CycleRecord, PortId};
use stbus_protocol::packet::{request_cells, response_cells};
use stbus_protocol::rules::RuleId;
use stbus_protocol::{NodeConfig, Opcode, ReqCell, RspCell};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// What kind of check a [`Violation`] comes from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ViolationKind {
    /// A protocol rule from the catalogue.
    Rule(RuleId),
    /// The starvation watchdog (an environment-level check).
    Starvation,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::Rule(r) => write!(f, "{r}"),
            ViolationKind::Starvation => f.write_str("WATCHDOG-STARVE"),
        }
    }
}

/// One recorded check failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Which check failed.
    pub kind: ViolationKind,
    /// Where.
    pub port: PortId,
    /// When.
    pub cycle: u64,
    /// Human-readable details.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} @ {} cycle {}] {}",
            self.kind, self.port, self.cycle, self.message
        )
    }
}

/// Summary of a checker run.
#[derive(Clone, Debug, Default)]
pub struct CheckerReport {
    /// Recorded failures (capped; see `suppressed`).
    pub violations: Vec<Violation>,
    /// Failures beyond the recording cap.
    pub suppressed: u64,
    /// Number of successful evaluations per rule.
    pub checks_passed: BTreeMap<RuleId, u64>,
}

impl CheckerReport {
    /// True when no check failed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Total failed checks.
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }

    /// Total passed checks over all rules.
    pub fn total_checks(&self) -> u64 {
        self.checks_passed.values().sum()
    }

    /// The distinct kinds that failed.
    pub fn failing_kinds(&self) -> Vec<ViolationKind> {
        let mut kinds: Vec<ViolationKind> = self.violations.iter().map(|v| v.kind).collect();
        kinds.sort_by_key(|k| format!("{k}"));
        kinds.dedup();
        kinds
    }
}

const VIOLATION_CAP: usize = 200;

#[derive(Debug)]
struct ReqProgress {
    opcode: Opcode,
    addr: u64,
    expected: usize,
    count: usize,
}

#[derive(Debug)]
struct RspProgress {
    responder: Option<usize>,
    expected: usize,
    count: usize,
}

#[derive(Debug, Clone)]
struct OutEntry {
    target: Option<usize>,
    tid: u8,
    opcode: Opcode,
}

/// The protocol checker bank: one logical checker per port plus the
/// cross-port ordering checks, all fed by [`CycleRecord`]s.
#[derive(Debug)]
pub struct ProtocolChecker {
    config: NodeConfig,
    held_req: HashMap<PortId, ReqCell>,
    held_rsp: HashMap<PortId, RspCell>,
    req_prog: HashMap<PortId, ReqProgress>,
    rsp_prog: HashMap<usize, RspProgress>,
    outstanding: Vec<VecDeque<OutEntry>>,
    chunk_owner: Vec<Option<u8>>,
    pkt_owner: Vec<Option<u8>>,
    wait: Vec<u64>,
    starvation_limit: u64,
    report: CheckerReport,
}

impl ProtocolChecker {
    /// A checker bank for one node configuration.
    pub fn new(config: &NodeConfig) -> Self {
        ProtocolChecker {
            held_req: HashMap::new(),
            held_rsp: HashMap::new(),
            req_prog: HashMap::new(),
            rsp_prog: HashMap::new(),
            outstanding: vec![VecDeque::new(); config.n_initiators],
            chunk_owner: vec![None; config.n_targets],
            pkt_owner: vec![None; config.n_targets],
            wait: vec![0; config.n_initiators],
            starvation_limit: 500,
            report: CheckerReport::default(),
            config: config.clone(),
        }
    }

    /// Overrides the starvation watchdog threshold (default 500 cycles).
    pub fn set_starvation_limit(&mut self, cycles: u64) {
        self.starvation_limit = cycles;
    }

    /// The accumulated report.
    pub fn report(&self) -> &CheckerReport {
        &self.report
    }

    /// Consumes the checker, yielding the final report.
    pub fn into_report(self) -> CheckerReport {
        self.report
    }

    fn pass(&mut self, rule: RuleId) {
        *self.report.checks_passed.entry(rule).or_insert(0) += 1;
    }

    fn fail(&mut self, kind: ViolationKind, port: PortId, cycle: u64, message: String) {
        if self.report.violations.len() < VIOLATION_CAP {
            self.report.violations.push(Violation {
                kind,
                port,
                cycle,
                message,
            });
        } else {
            self.report.suppressed += 1;
        }
    }

    fn check(
        &mut self,
        ok: bool,
        rule: RuleId,
        port: PortId,
        cycle: u64,
        msg: impl FnOnce() -> String,
    ) {
        if ok {
            self.pass(rule);
        } else {
            self.fail(ViolationKind::Rule(rule), port, cycle, msg());
        }
    }

    /// The expected byte-enable mask of one request cell.
    fn expected_be(&self, opcode: Opcode, pkt_addr: u64, _cell_index: usize) -> u32 {
        if !opcode.has_request_data() {
            return 0;
        }
        let bus = self.config.bus_bytes;
        let size = opcode.size().bytes();
        if size < bus {
            let offset = (pkt_addr as usize) % bus;
            (((1u64 << size) - 1) << offset) as u32
        } else {
            self.config.full_be()
        }
    }

    /// Digests one cycle.
    pub fn observe(&mut self, rec: &CycleRecord) {
        let ni = self.config.n_initiators;
        let nt = self.config.n_targets;
        for i in 0..ni {
            self.observe_request_side(rec, PortId::Initiator(i));
            self.observe_initiator_response(rec, i);
            self.watchdog(rec, i);
        }
        for t in 0..nt {
            self.observe_request_side(rec, PortId::Target(t));
            self.observe_target_chunks(rec, t);
            self.observe_response_stability(rec, PortId::Target(t));
        }
    }

    /// Stability + cell/packet rules on the request phase of any port.
    fn observe_request_side(&mut self, rec: &CycleRecord, port: PortId) {
        let (req, cell, gnt) = rec.request_at(port);
        let cell = *cell;
        let cycle = rec.cycle;

        // R-REQ-STABLE: while req is held across cycles without a grant,
        // the presented cell must not change.
        if req {
            if let Some(prev) = self.held_req.get(&port).copied() {
                self.check(prev == cell, RuleId::ReqStable, port, cycle, || {
                    format!("cell changed while waiting for gnt: {prev:?} -> {cell:?}")
                });
            }
        }
        if req && !gnt {
            self.held_req.insert(port, cell);
        } else {
            self.held_req.remove(&port);
        }

        // R-GNT at initiator ports: the node must not grant thin air.
        if let PortId::Initiator(_) = port {
            self.check(req || !gnt, RuleId::GrantWithoutReq, port, cycle, || {
                "gnt asserted without req".to_owned()
            });
        }

        if !(req && gnt) {
            return;
        }

        // A cell transferred: per-cell and per-packet rules.
        let first = !self.req_prog.contains_key(&port);
        if first {
            let protocol = self.config.protocol;
            self.check(
                cell.opcode.legal_for(protocol),
                RuleId::OpcodeLegal,
                port,
                cycle,
                || format!("opcode {} illegal on {}", cell.opcode, protocol),
            );
            let align = cell.opcode.size().bytes() as u64;
            self.check(
                cell.addr % align == 0,
                RuleId::AddrAligned,
                port,
                cycle,
                || format!("address {:#x} unaligned to {align}", cell.addr),
            );
            self.req_prog.insert(
                port,
                ReqProgress {
                    opcode: cell.opcode,
                    addr: cell.addr,
                    expected: request_cells(
                        cell.opcode,
                        self.config.protocol,
                        self.config.bus_bytes,
                    ),
                    count: 0,
                },
            );
        }
        let (opcode, addr, expected, count) = {
            let p = self.req_prog.get_mut(&port).expect("inserted above");
            p.count += 1;
            (p.opcode, p.addr, p.expected, p.count)
        };

        self.check(
            cell.opcode == opcode,
            RuleId::EopPosition,
            port,
            cycle,
            || format!("opcode changed mid-packet: {} -> {}", opcode, cell.opcode),
        );
        let be_expected = self.expected_be(opcode, addr, count - 1);
        self.check(
            cell.be == be_expected,
            RuleId::ByteEnable,
            port,
            cycle,
            || {
                format!(
                    "byte enables {:#010b} != expected {:#010b} for {} at {:#x}",
                    cell.be, be_expected, opcode, addr
                )
            },
        );

        if cell.eop {
            self.check(count == expected, RuleId::EopPosition, port, cycle, || {
                format!("eop after {count} cells, expected {expected} for {opcode}")
            });
            self.req_prog.remove(&port);
            // Outstanding bookkeeping happens at the initiator boundary.
            if let PortId::Initiator(i) = port {
                self.outstanding[i].push_back(OutEntry {
                    target: self.config.address_map.decode(addr).map(|t| t.0 as usize),
                    tid: cell.tid.0,
                    opcode,
                });
            }
        } else if count >= expected {
            self.fail(
                ViolationKind::Rule(RuleId::EopPosition),
                port,
                cycle,
                format!("packet exceeds {expected} cells without eop"),
            );
            self.req_prog.remove(&port);
        }
    }

    /// Ordering, tid and length rules on responses at an initiator port.
    fn observe_initiator_response(&mut self, rec: &CycleRecord, i: usize) {
        let port = PortId::Initiator(i);
        let (r_req, cell, r_gnt) = rec.init_response(i);
        let cell = *cell;
        let cycle = rec.cycle;

        // R-RSP-STABLE.
        if r_req {
            if let Some(prev) = self.held_rsp.get(&port).copied() {
                self.check(prev == cell, RuleId::RspStable, port, cycle, || {
                    format!("response cell changed while waiting for r_gnt: {prev:?} -> {cell:?}")
                });
            }
        }
        if r_req && !r_gnt {
            self.held_rsp.insert(port, cell);
        } else {
            self.held_rsp.remove(&port);
        }

        if !(r_req && r_gnt) {
            return;
        }

        let first = !self.rsp_prog.contains_key(&i);
        if first {
            // Identify the responder: a target port delivering to i this
            // cycle, or the internal error responder.
            let responder = (0..self.config.n_targets).find(|t| {
                let (tr, tc, tg) = rec.target_response(*t);
                tr && tg && tc.src.0 as usize == i
            });
            let resp_as_target = responder; // None = internal
            let ordered = !self.config.protocol.allows_out_of_order();

            // Find the outstanding entry this response answers.
            let pos = if ordered {
                // Must be the oldest outstanding (R-ORDER).
                let front_target = self.outstanding[i].front().map(|e| e.target);
                let front_matches = front_target == Some(resp_as_target);
                self.check(front_matches, RuleId::OrderedResponse, port, cycle, || {
                    format!(
                        "response from {resp_as_target:?} but oldest outstanding is {front_target:?}"
                    )
                });
                if front_matches {
                    Some(0)
                } else {
                    // fall back to any matching responder to keep state sane
                    self.outstanding[i]
                        .iter()
                        .position(|e| e.target == resp_as_target)
                }
            } else {
                // R-TID: the (responder, tid) pair must be outstanding.
                let pos = self.outstanding[i]
                    .iter()
                    .position(|e| e.target == resp_as_target && e.tid == cell.tid.0);
                self.check(pos.is_some(), RuleId::TidMatch, port, cycle, || {
                    format!(
                        "response tid {} from {:?} matches no outstanding request",
                        cell.tid, resp_as_target
                    )
                });
                pos.or_else(|| {
                    self.outstanding[i]
                        .iter()
                        .position(|e| e.target == resp_as_target)
                })
            };

            self.check(pos.is_some(), RuleId::OrphanResponse, port, cycle, || {
                format!("response from {resp_as_target:?} with no outstanding request")
            });

            let expected = pos
                .and_then(|p| self.outstanding[i].get(p))
                .map(|e| response_cells(e.opcode, self.config.protocol, self.config.bus_bytes))
                .unwrap_or(1);
            if let Some(p) = pos {
                self.outstanding[i].remove(p);
            }
            self.rsp_prog.insert(
                i,
                RspProgress {
                    responder,
                    expected,
                    count: 0,
                },
            );
        }

        let (expected, count, responder) = {
            let p = self.rsp_prog.get_mut(&i).expect("inserted above");
            p.count += 1;
            (p.expected, p.count, p.responder)
        };
        let _ = responder;

        if cell.eop {
            self.check(count == expected, RuleId::RspLength, port, cycle, || {
                format!("response of {count} cells, expected {expected}")
            });
            self.rsp_prog.remove(&i);
        } else if count >= expected {
            self.fail(
                ViolationKind::Rule(RuleId::RspLength),
                port,
                cycle,
                format!("response exceeds {expected} cells without eop"),
            );
            self.rsp_prog.remove(&i);
        }
    }

    /// Chunk atomicity and packet atomicity at a target port.
    fn observe_target_chunks(&mut self, rec: &CycleRecord, t: usize) {
        let port = PortId::Target(t);
        if !rec.request_fires(port) {
            return;
        }
        let (_, cell, _) = rec.target_request(t);
        let cell = *cell;
        let cycle = rec.cycle;

        if self.config.protocol.split_transactions() {
            if let Some(owner) = self.chunk_owner[t] {
                self.check(
                    cell.src.0 == owner,
                    RuleId::ChunkAtomic,
                    port,
                    cycle,
                    || {
                        format!(
                            "source {} interleaved inside I{}'s locked chunk",
                            cell.src, owner
                        )
                    },
                );
            }
        }
        if let Some(owner) = self.pkt_owner[t] {
            self.check(
                cell.src.0 == owner,
                RuleId::ChunkAtomic,
                port,
                cycle,
                || format!("source {} interleaved inside I{}'s packet", cell.src, owner),
            );
        }
        self.pkt_owner[t] = if cell.eop { None } else { Some(cell.src.0) };
        if cell.lock {
            self.chunk_owner[t] = Some(cell.src.0);
        } else if cell.eop {
            self.chunk_owner[t] = None;
        }
    }

    /// R-RSP-STABLE on the target side (the target BFM's own outputs are
    /// also watched — "some bugs could be given by verification
    /// environment").
    fn observe_response_stability(&mut self, rec: &CycleRecord, port: PortId) {
        let (r_req, cell, r_gnt) = rec.response_at(port);
        let cell = *cell;
        if r_req {
            if let Some(prev) = self.held_rsp.get(&port).copied() {
                self.check(prev == cell, RuleId::RspStable, port, rec.cycle, || {
                    format!("target response cell changed while stalled: {prev:?} -> {cell:?}")
                });
            }
        }
        if r_req && !r_gnt {
            self.held_rsp.insert(port, cell);
        } else {
            self.held_rsp.remove(&port);
        }
    }

    /// The starvation watchdog.
    fn watchdog(&mut self, rec: &CycleRecord, i: usize) {
        let (req, _, gnt) = rec.init_request(i);
        if req && !gnt {
            self.wait[i] += 1;
            if self.wait[i] == self.starvation_limit {
                self.fail(
                    ViolationKind::Starvation,
                    PortId::Initiator(i),
                    rec.cycle,
                    format!("request unserved for {} cycles", self.starvation_limit),
                );
                self.wait[i] = 0;
            }
        } else {
            self.wait[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::packet::PacketParams;
    use stbus_protocol::{
        DutInputs, DutOutputs, InitiatorId, RequestPacket, TransactionId, TransferSize,
    };

    fn cfg() -> NodeConfig {
        NodeConfig::reference()
    }

    fn params(c: &NodeConfig) -> PacketParams {
        PacketParams {
            bus_bytes: c.bus_bytes,
            protocol: c.protocol,
            endianness: c.endianness,
        }
    }

    fn rec(c: &NodeConfig, cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            inputs: DutInputs::idle(c),
            outputs: DutOutputs::idle(c),
        }
    }

    fn fire_request(
        c: &NodeConfig,
        cycle: u64,
        i: usize,
        cell: stbus_protocol::ReqCell,
    ) -> CycleRecord {
        let mut r = rec(c, cycle);
        r.inputs.initiator[i].req = true;
        r.inputs.initiator[i].cell = cell;
        r.outputs.initiator[i].gnt = true;
        r
    }

    #[test]
    fn clean_transaction_passes_all_rules() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let pkt = RequestPacket::build(
            Opcode::load(TransferSize::B8),
            0x40,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(1),
            0,
            false,
        )
        .unwrap();
        chk.observe(&fire_request(&c, 1, 0, pkt.cells()[0]));
        // Response from target 0.
        let mut r = rec(&c, 5);
        r.inputs.initiator[0].r_gnt = true;
        let rsp = stbus_protocol::RspCell::ok(InitiatorId(0), TransactionId(1), true);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = rsp;
        r.inputs.target[0].r_req = true;
        r.inputs.target[0].r_cell = rsp;
        r.outputs.target[0].r_gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.checks_passed[&RuleId::OpcodeLegal] >= 1);
        assert!(report.checks_passed[&RuleId::TidMatch] >= 1);
        assert!(report.checks_passed[&RuleId::RspLength] >= 1);
    }

    #[test]
    fn unstable_request_cell_is_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let mk = |addr: u64| {
            RequestPacket::build(
                Opcode::load(TransferSize::B8),
                addr,
                &[],
                params(&c),
                InitiatorId(0),
                TransactionId(1),
                0,
                false,
            )
            .unwrap()
            .cells()[0]
        };
        // req held, no gnt.
        let mut r = rec(&c, 1);
        r.inputs.initiator[0].req = true;
        r.inputs.initiator[0].cell = mk(0x40);
        chk.observe(&r);
        // Next cycle the cell changes while still requesting — violation.
        let mut r = rec(&c, 2);
        r.inputs.initiator[0].req = true;
        r.inputs.initiator[0].cell = mk(0x80);
        chk.observe(&r);
        let report = chk.into_report();
        assert!(!report.passed());
        assert_eq!(
            report.violations[0].kind,
            ViolationKind::Rule(RuleId::ReqStable)
        );
    }

    #[test]
    fn tid_mismatch_is_flagged_on_type3() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let pkt = RequestPacket::build(
            Opcode::load(TransferSize::B8),
            0x40,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(2),
            0,
            false,
        )
        .unwrap();
        chk.observe(&fire_request(&c, 1, 0, pkt.cells()[0]));
        // Response arrives with a corrupted tid.
        let mut r = rec(&c, 6);
        r.inputs.initiator[0].r_gnt = true;
        let rsp = stbus_protocol::RspCell::ok(InitiatorId(0), TransactionId(3), true);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = rsp;
        r.inputs.target[0].r_req = true;
        r.inputs.target[0].r_cell = rsp;
        r.outputs.target[0].r_gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        let kinds = report.failing_kinds();
        assert!(
            kinds.contains(&ViolationKind::Rule(RuleId::TidMatch)),
            "{kinds:?}"
        );
    }

    #[test]
    fn out_of_order_flagged_on_type2() {
        let c = NodeConfig::builder("t2")
            .initiators(1)
            .targets(2)
            .bus_bytes(8)
            .protocol(stbus_protocol::ProtocolType::Type2)
            .build()
            .unwrap();
        let mut chk = ProtocolChecker::new(&c);
        let mk = |addr: u64| {
            RequestPacket::build(
                Opcode::load(TransferSize::B8),
                addr,
                &[],
                params(&c),
                InitiatorId(0),
                TransactionId(0),
                0,
                false,
            )
            .unwrap()
            .cells()[0]
        };
        chk.observe(&fire_request(&c, 1, 0, mk(0x0000_0000))); // → T0
        chk.observe(&fire_request(&c, 2, 0, mk(0x0100_0000))); // → T1
                                                               // T1 responds first — out of order.
        let mut r = rec(&c, 6);
        r.inputs.initiator[0].r_gnt = true;
        let rsp = stbus_protocol::RspCell::ok(InitiatorId(0), TransactionId(0), true);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = rsp;
        r.inputs.target[1].r_req = true;
        r.inputs.target[1].r_cell = rsp;
        r.outputs.target[1].r_gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::OrderedResponse)));
    }

    #[test]
    fn chunk_interleave_flagged_at_target() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let mk = |src: u8, lock: bool, tid: u8| {
            let mut cell = RequestPacket::build(
                Opcode::load(TransferSize::B8),
                0x40,
                &[],
                params(&c),
                InitiatorId(src),
                TransactionId(tid),
                0,
                lock,
            )
            .unwrap()
            .cells()[0];
            cell.lock = lock;
            cell
        };
        // I0 opens a locked chunk at target 0.
        let mut r = rec(&c, 1);
        r.outputs.target[0].req = true;
        r.outputs.target[0].cell = mk(0, true, 1);
        r.inputs.target[0].gnt = true;
        chk.observe(&r);
        // I1's cell appears at the same target — interleave.
        let mut r = rec(&c, 2);
        r.outputs.target[0].req = true;
        r.outputs.target[0].cell = mk(1, false, 2);
        r.inputs.target[0].gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::ChunkAtomic)));
    }

    #[test]
    fn bad_byte_enables_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let mut cell = RequestPacket::build(
            Opcode::store(TransferSize::B2),
            0x42,
            &[1, 2],
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap()
        .cells()[0];
        cell.be = c.full_be(); // the B1 symptom
        chk.observe(&fire_request(&c, 1, 0, cell));
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::ByteEnable)));
    }

    #[test]
    fn starvation_watchdog_fires() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        chk.set_starvation_limit(10);
        let cell = RequestPacket::build(
            Opcode::load(TransferSize::B8),
            0x40,
            &[],
            params(&c),
            InitiatorId(1),
            TransactionId(0),
            0,
            false,
        )
        .unwrap()
        .cells()[0];
        for cycle in 0..12 {
            let mut r = rec(&c, cycle);
            r.inputs.initiator[1].req = true;
            r.inputs.initiator[1].cell = cell;
            chk.observe(&r);
        }
        let report = chk.into_report();
        assert!(report.failing_kinds().contains(&ViolationKind::Starvation));
    }

    #[test]
    fn orphan_response_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        // A target responds to initiator 0 although nothing is outstanding.
        let mut r = rec(&c, 3);
        r.inputs.initiator[0].r_gnt = true;
        let rsp = stbus_protocol::RspCell::ok(InitiatorId(0), TransactionId(0), true);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = rsp;
        r.inputs.target[0].r_req = true;
        r.inputs.target[0].r_cell = rsp;
        r.outputs.target[0].r_gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::OrphanResponse)));
    }

    #[test]
    fn wrong_response_length_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        // LD32 on a 64-bit bus expects a 4-cell response; deliver a 1-cell
        // one (eop on the first cell).
        let pkt = RequestPacket::build(
            Opcode::load(TransferSize::B32),
            0x40,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(1),
            0,
            false,
        )
        .unwrap();
        chk.observe(&fire_request(&c, 1, 0, pkt.cells()[0]));
        let mut r = rec(&c, 5);
        r.inputs.initiator[0].r_gnt = true;
        let rsp = stbus_protocol::RspCell::ok(InitiatorId(0), TransactionId(1), true);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = rsp;
        r.inputs.target[0].r_req = true;
        r.inputs.target[0].r_cell = rsp;
        r.outputs.target[0].r_gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::RspLength)));
    }

    #[test]
    fn packet_overrun_without_eop_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        // A 2-cell ST16 whose cells never assert eop.
        let pkt = RequestPacket::build(
            Opcode::store(TransferSize::B16),
            0x40,
            &(0..16).collect::<Vec<u8>>(),
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        for (k, cell) in pkt.cells().iter().enumerate() {
            let mut cell = *cell;
            cell.eop = false;
            chk.observe(&fire_request(&c, k as u64, 0, cell));
        }
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::EopPosition)));
    }

    #[test]
    fn unstable_response_cell_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let mk = |tid: u8| stbus_protocol::RspCell::ok(InitiatorId(0), TransactionId(tid), true);
        // Response presented, initiator not ready...
        let mut r = rec(&c, 1);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = mk(1);
        chk.observe(&r);
        // ...and the presented cell changes while still waiting.
        let mut r = rec(&c, 2);
        r.outputs.initiator[0].r_req = true;
        r.outputs.initiator[0].r_cell = mk(2);
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::RspStable)));
    }

    #[test]
    fn misaligned_address_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let mut cell = RequestPacket::build(
            Opcode::load(TransferSize::B8),
            0x40,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap()
        .cells()[0];
        cell.addr = 0x43; // torn alignment on the wire
        chk.observe(&fire_request(&c, 1, 0, cell));
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::AddrAligned)));
    }

    #[test]
    fn report_accounting_is_consistent() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let pkt = RequestPacket::build(
            Opcode::load(TransferSize::B8),
            0x40,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(1),
            0,
            false,
        )
        .unwrap();
        chk.observe(&fire_request(&c, 1, 0, pkt.cells()[0]));
        let report = chk.into_report();
        assert!(report.passed());
        assert_eq!(report.total_violations(), 0);
        assert!(report.total_checks() >= 4);
        assert!(report.failing_kinds().is_empty());
    }

    #[test]
    fn grant_without_request_flagged() {
        let c = cfg();
        let mut chk = ProtocolChecker::new(&c);
        let mut r = rec(&c, 1);
        r.outputs.initiator[2].gnt = true;
        chk.observe(&r);
        let report = chk.into_report();
        assert!(report
            .failing_kinds()
            .contains(&ViolationKind::Rule(RuleId::GrantWithoutReq)));
    }
}
