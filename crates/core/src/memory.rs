//! A sparse byte-addressable memory, used by target BFMs and the
//! scoreboard's reference model.

use std::collections::HashMap;

/// A sparse memory: unwritten bytes read back as a deterministic
/// fill pattern derived from the address, so loads of never-written
/// locations still produce definite, reproducible data on both views.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseMemory {
    bytes: HashMap<u64, u8>,
}

impl SparseMemory {
    /// An empty memory.
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// The deterministic background pattern of an unwritten byte.
    pub fn background(addr: u64) -> u8 {
        // A cheap address hash; stable across runs and views.
        let x = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (x >> 56) as u8
    }

    /// Reads one byte.
    pub fn read_byte(&self, addr: u64) -> u8 {
        self.bytes
            .get(&addr)
            .copied()
            .unwrap_or_else(|| Self::background(addr))
    }

    /// Writes one byte.
    pub fn write_byte(&mut self, addr: u64, value: u8) {
        self.bytes.insert(addr, value);
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|k| self.read_byte(addr + k)).collect()
    }

    /// Writes a slice starting at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        for (k, b) in data.iter().enumerate() {
            self.write_byte(addr + k as u64, *b);
        }
    }

    /// Writes only the lanes enabled in `be`: byte `k` of `data` is
    /// written iff bit `k` of `be` is set. The base address is `addr`.
    pub fn write_masked(&mut self, addr: u64, data: &[u8], be: u32) {
        for (k, b) in data.iter().enumerate() {
            if (be >> k) & 1 == 1 {
                self.write_byte(addr + k as u64, *b);
            }
        }
    }

    /// Number of explicitly written bytes.
    pub fn written_len(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn background_is_deterministic_and_varied() {
        assert_eq!(SparseMemory::background(100), SparseMemory::background(100));
        let distinct: std::collections::HashSet<u8> =
            (0..64u64).map(SparseMemory::background).collect();
        assert!(distinct.len() > 10, "pattern should vary across addresses");
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut m = SparseMemory::new();
        m.write(0x1000, &[1, 2, 3, 4]);
        assert_eq!(m.read(0x1000, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read_byte(0x1004), SparseMemory::background(0x1004));
        assert_eq!(m.written_len(), 4);
    }

    #[test]
    fn masked_write_skips_disabled_lanes() {
        let mut m = SparseMemory::new();
        m.write(0x0, &[0xAA; 4]);
        m.write_masked(0x0, &[1, 2, 3, 4], 0b0101);
        assert_eq!(m.read(0x0, 4), vec![1, 0xAA, 3, 0xAA]);
    }

    proptest! {
        #[test]
        fn prop_read_write_round_trip(addr in 0u64..1_000_000, data in proptest::collection::vec(any::<u8>(), 1..64)) {
            let mut m = SparseMemory::new();
            m.write(addr, &data);
            prop_assert_eq!(m.read(addr, data.len()), data);
        }

        #[test]
        fn prop_masked_write_equivalence(addr in 0u64..1000, data in proptest::collection::vec(any::<u8>(), 1..32), be: u32) {
            // write_masked must equal per-byte conditional writes.
            let mut a = SparseMemory::new();
            let mut b = SparseMemory::new();
            a.write_masked(addr, &data, be);
            for (k, byte) in data.iter().enumerate() {
                if (be >> k) & 1 == 1 {
                    b.write_byte(addr + k as u64, *byte);
                }
            }
            prop_assert_eq!(a, b);
        }
    }
}
