//! Per-run VCD dumping.
//!
//! "Moreover, an associated VCD file, a standard format for waveform
//! recording, is generated so that it can be used later for bus accurate
//! comparison" (paper §4). Both design views are dumped through this same
//! code path from the same [`CycleRecord`]s, so the two files declare an
//! identical variable tree — exactly what the `stba` analyzer needs.

use crate::record::CycleRecord;
use stbus_protocol::{NodeConfig, ReqCell, RspCell, RspKind};
use vcd::{Scalar, VarId, VcdValue, VcdWriter};

/// Nanoseconds of simulated time per clock cycle in the dump.
pub const CYCLE_TIME: u64 = 10;

/// The variable names dumped per port, with their widths for a given bus
/// width (shared knowledge between the dump and the analyzer).
pub fn port_var_names(bus_bytes: usize) -> Vec<(&'static str, usize)> {
    vec![
        ("req", 1),
        ("addr", 64),
        ("opc", 8),
        ("data", bus_bytes * 8),
        ("be", bus_bytes),
        ("eop", 1),
        ("lck", 1),
        ("tid", 8),
        ("src", 8),
        ("pri", 8),
        ("gnt", 1),
        ("r_req", 1),
        ("r_data", bus_bytes * 8),
        ("r_err", 1),
        ("r_eop", 1),
        ("r_tid", 8),
        ("r_src", 8),
        ("r_gnt", 1),
    ]
}

fn bytes_value(bytes: &[u8]) -> VcdValue {
    // MSB-first binary literal.
    let s: String = bytes.iter().rev().map(|b| format!("{b:08b}")).collect();
    VcdValue::from_binary_str(&s).expect("binary digits")
}

struct PortVars {
    vars: Vec<VarId>,
}

/// Streams cycle records of one run into an in-memory VCD document.
pub struct VcdDump {
    writer: VcdWriter<Vec<u8>>,
    ports: Vec<PortVars>,
    widths: Vec<(&'static str, usize)>,
    last: Vec<Vec<Option<VcdValue>>>,
    bus_bytes: usize,
    end: u64,
}

impl VcdDump {
    /// Declares the full variable tree for a configuration.
    pub fn new(config: &NodeConfig) -> Self {
        let mut writer = VcdWriter::new(Vec::new(), "1ns");
        let widths = port_var_names(config.bus_bytes);
        let mut ports = Vec::new();
        writer.push_scope("tb");
        for i in 0..config.n_initiators {
            writer.push_scope(&format!("init{i}"));
            let vars = widths.iter().map(|(n, w)| writer.add_var(n, *w)).collect();
            ports.push(PortVars { vars });
            writer.pop_scope();
        }
        for t in 0..config.n_targets {
            writer.push_scope(&format!("tgt{t}"));
            let vars = widths.iter().map(|(n, w)| writer.add_var(n, *w)).collect();
            ports.push(PortVars { vars });
            writer.pop_scope();
        }
        writer.pop_scope();
        writer.begin().expect("in-memory write cannot fail");
        let n_ports = ports.len();
        let n_vars = widths.len();
        VcdDump {
            writer,
            ports,
            widths,
            last: vec![vec![None; n_vars]; n_ports],
            bus_bytes: config.bus_bytes,
            end: 0,
        }
    }

    fn req_values(&self, req: bool, cell: &ReqCell, gnt: bool) -> Vec<VcdValue> {
        vec![
            VcdValue::scalar(Scalar::from_bool(req)),
            VcdValue::from_u64(cell.addr, 64),
            VcdValue::from_u64(cell.opcode.encode() as u64, 8),
            bytes_value(cell.data.lanes(self.bus_bytes)),
            VcdValue::from_u64(cell.be as u64, self.bus_bytes),
            VcdValue::scalar(Scalar::from_bool(cell.eop)),
            VcdValue::scalar(Scalar::from_bool(cell.lock)),
            VcdValue::from_u64(cell.tid.0 as u64, 8),
            VcdValue::from_u64(cell.src.0 as u64, 8),
            VcdValue::from_u64(cell.pri as u64, 8),
            VcdValue::scalar(Scalar::from_bool(gnt)),
        ]
    }

    fn rsp_values(&self, r_req: bool, cell: &RspCell, r_gnt: bool) -> Vec<VcdValue> {
        vec![
            VcdValue::scalar(Scalar::from_bool(r_req)),
            bytes_value(cell.data.lanes(self.bus_bytes)),
            VcdValue::scalar(Scalar::from_bool(cell.kind == RspKind::Error)),
            VcdValue::scalar(Scalar::from_bool(cell.eop)),
            VcdValue::from_u64(cell.tid.0 as u64, 8),
            VcdValue::from_u64(cell.src.0 as u64, 8),
            VcdValue::scalar(Scalar::from_bool(r_gnt)),
        ]
    }

    /// Appends one cycle.
    pub fn record(&mut self, rec: &CycleRecord) {
        let time = rec.cycle * CYCLE_TIME;
        self.end = self.end.max(time);
        let ni = rec.inputs.initiator.len();
        for p in 0..self.ports.len() {
            let mut values = if p < ni {
                let (req, cell, gnt) = rec.init_request(p);
                let mut v = self.req_values(req, cell, gnt);
                let (r_req, r_cell, r_gnt) = rec.init_response(p);
                v.extend(self.rsp_values(r_req, r_cell, r_gnt));
                v
            } else {
                let t = p - ni;
                let (req, cell, gnt) = rec.target_request(t);
                let mut v = self.req_values(req, cell, gnt);
                let (r_req, r_cell, r_gnt) = rec.target_response(t);
                v.extend(self.rsp_values(r_req, r_cell, r_gnt));
                v
            };
            debug_assert_eq!(values.len(), self.widths.len());
            for (k, value) in values.drain(..).enumerate() {
                if self.last[p][k].as_ref() != Some(&value) {
                    self.writer
                        .change_value(time, self.ports[p].vars[k], &value)
                        .expect("in-memory write cannot fail");
                    self.last[p][k] = Some(value);
                }
            }
        }
    }

    /// Finishes the dump and returns the VCD text.
    pub fn finish(self) -> String {
        let buf = self
            .writer
            .finish(self.end + CYCLE_TIME)
            .expect("in-memory write cannot fail");
        String::from_utf8(buf).expect("vcd is ascii")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::{DutInputs, DutOutputs};
    use vcd::VcdDocument;

    #[test]
    fn dump_declares_identical_tree_for_both_views() {
        let cfg = stbus_protocol::NodeConfig::reference();
        let dump = VcdDump::new(&cfg);
        let text = dump.finish();
        let doc = VcdDocument::parse(&text).unwrap();
        // 5 ports x 18 vars.
        assert_eq!(doc.vars().len(), 5 * 18);
        assert!(doc.var_by_name("tb.init0.req").is_some());
        assert!(doc.var_by_name("tb.tgt1.r_gnt").is_some());
        let data = doc.var_by_name("tb.init2.data").unwrap();
        assert_eq!(doc.var(data).width, 64);
    }

    #[test]
    fn changes_are_deduplicated() {
        let cfg = stbus_protocol::NodeConfig::reference();
        let mut dump = VcdDump::new(&cfg);
        let rec = |cycle| CycleRecord {
            cycle,
            inputs: DutInputs::idle(&cfg),
            outputs: DutOutputs::idle(&cfg),
        };
        dump.record(&rec(0));
        dump.record(&rec(1));
        dump.record(&rec(2));
        let text = dump.finish();
        // After the initial values at #0, idle cycles add no change lines.
        let after_t0 = text.split("#10").nth(1);
        assert!(after_t0.is_none() || !after_t0.unwrap_or("").contains("\n0"));
        let doc = VcdDocument::parse(&text).unwrap();
        let req = doc.var_by_name("tb.init0.req").unwrap();
        // One 'x' from $dumpvars plus one real value at #0 — and nothing
        // from the two idle cycles after.
        assert!(doc.changes(req).len() <= 2);
        assert!(doc.changes(req).iter().all(|(t, _)| *t == 0));
    }

    #[test]
    fn recorded_values_round_trip() {
        let cfg = stbus_protocol::NodeConfig::reference();
        let mut dump = VcdDump::new(&cfg);
        let mut rec = CycleRecord {
            cycle: 0,
            inputs: DutInputs::idle(&cfg),
            outputs: DutOutputs::idle(&cfg),
        };
        rec.inputs.initiator[0].req = true;
        rec.inputs.initiator[0].cell.addr = 0xABCD;
        rec.inputs.initiator[0].cell.data =
            stbus_protocol::CellData::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        rec.outputs.initiator[0].gnt = true;
        dump.record(&rec);
        let text = dump.finish();
        let doc = VcdDocument::parse(&text).unwrap();
        let addr = doc.var_by_name("tb.init0.addr").unwrap();
        assert_eq!(doc.value_at(addr, 0).as_u64(), Some(0xABCD));
        let data = doc.var_by_name("tb.init0.data").unwrap();
        assert_eq!(doc.value_at(data, 0).as_u64(), Some(0x0807060504030201));
        let gnt = doc.var_by_name("tb.init0.gnt").unwrap();
        assert_eq!(doc.value_at(gnt, 0).as_u64(), Some(1));
    }
}
