//! CATG — *Checkers and Automatic Test Generation*: the common reusable
//! verification environment for BCA and RTL models.
//!
//! This crate is the paper's primary contribution, rebuilt in Rust. In the
//! paper, CATG is an `e`-language library of STBus harnesses, monitors,
//! protocol checkers, a scoreboard and functional coverage, plugged onto
//! either the RTL design (through NCSim) or the SystemC BCA model (through
//! a VHDL wrapper). Here the seam is the [`stbus_protocol::DutView`]
//! trait, and every environment component consumes the same per-cycle
//! [`CycleRecord`] port samples regardless of which view produced them:
//!
//! * [`InitiatorBfm`] / [`TargetBfm`] — harnesses: constrained-random
//!   traffic generation and reactive memory-model targets, fully
//!   deterministic per seed (the paper: "It applies same test cases on
//!   both with same seeds");
//! * [`PortMonitor`] — reassembles cells into packets and transactions;
//! * [`ProtocolChecker`] — enforces the [`stbus_protocol::rules`]
//!   catalogue at every port, plus a starvation watchdog;
//! * [`Scoreboard`] — end-to-end data integrity against a reference
//!   memory;
//! * [`FunctionalCoverage`] — the functional-coverage model whose 100%
//!   goal gates sign-off;
//! * [`Testbench`] — the Figure 2/6 architecture: harnesses around a
//!   pluggable DUT, running a [`TestSpec`] for a seed and producing a
//!   [`RunResult`];
//! * [`tests_lib`] — the twelve generic test cases of the paper's §5;
//! * [`LegacyTestbench`] — the *past flow*: the model owner's
//!   write-then-read SystemC harness with visual checks, kept for the
//!   bug-detection comparison (E2);
//! * [`VcdDump`] — the per-run waveform dump consumed by the `stba`
//!   analyzer for the bus-accurate comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod constraint;
mod coverage;
mod harness;
mod legacy;
mod memory;
mod monitor;
mod record;
mod report;
mod scoreboard;
mod sequence;
mod target;
mod testbench;
pub mod tests_lib;
mod traffic;
mod vcd_dump;
mod views;

pub use checker::{CheckerReport, ProtocolChecker, Violation, ViolationKind};
pub use constraint::{ConstraintModel, Implication, Pred};
pub use coverage::{CoverageGroup, CoverageReport, FunctionalCoverage, HoleId};
pub use harness::{InitiatorBfm, InitiatorStats};
pub use legacy::{LegacyOutcome, LegacyTestbench};
pub use memory::SparseMemory;
pub use monitor::{MonitorEvent, PortMonitor, PortSide};
pub use record::{CycleRecord, PortId};
pub use scoreboard::{Scoreboard, ScoreboardError};
pub use sequence::{SequenceError, SequenceRunner};
pub use target::{TargetBfm, TargetProfile};
pub use testbench::{RunResult, TestSpec, Testbench, TestbenchOptions};
pub use traffic::{generate_plans, OpMix, TrafficProfile, TransactionPlan};
pub use vcd_dump::{port_var_names, VcdDump, CYCLE_TIME};

/// The dump's nanoseconds-per-cycle constant, for analyzer callers.
pub fn vcd_cycle_time() -> u64 {
    vcd_dump::CYCLE_TIME
}
pub use views::{build_view, build_view_with_engine};
