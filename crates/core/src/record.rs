//! Per-cycle port samples — the common currency of the environment.

use stbus_protocol::{DutInputs, DutOutputs, ReqCell, RspCell};

/// Identifies one DUT port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PortId {
    /// Initiator port `i`.
    Initiator(usize),
    /// Target port `t`.
    Target(usize),
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortId::Initiator(i) => write!(f, "init{i}"),
            PortId::Target(t) => write!(f, "tgt{t}"),
        }
    }
}

/// Everything observable at the DUT boundary on one clock cycle: the
/// sampled inputs and outputs together. Monitors, checkers, coverage and
/// the VCD dump all consume this — identically for both design views.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleRecord {
    /// The cycle number (0-based).
    pub cycle: u64,
    /// The inputs the DUT sampled.
    pub inputs: DutInputs,
    /// The outputs the DUT produced.
    pub outputs: DutOutputs,
}

impl CycleRecord {
    /// The request-phase view at an initiator port:
    /// `(req, cell, gnt)`.
    pub fn init_request(&self, i: usize) -> (bool, &ReqCell, bool) {
        (
            self.inputs.initiator[i].req,
            &self.inputs.initiator[i].cell,
            self.outputs.initiator[i].gnt,
        )
    }

    /// The response-phase view at an initiator port:
    /// `(r_req, cell, r_gnt)`.
    pub fn init_response(&self, i: usize) -> (bool, &RspCell, bool) {
        (
            self.outputs.initiator[i].r_req,
            &self.outputs.initiator[i].r_cell,
            self.inputs.initiator[i].r_gnt,
        )
    }

    /// The request-phase view at a target port: `(req, cell, gnt)`.
    pub fn target_request(&self, t: usize) -> (bool, &ReqCell, bool) {
        (
            self.outputs.target[t].req,
            &self.outputs.target[t].cell,
            self.inputs.target[t].gnt,
        )
    }

    /// The response-phase view at a target port: `(r_req, cell, r_gnt)`.
    pub fn target_response(&self, t: usize) -> (bool, &RspCell, bool) {
        (
            self.inputs.target[t].r_req,
            &self.inputs.target[t].r_cell,
            self.outputs.target[t].r_gnt,
        )
    }

    /// Request-phase view for any port id. At initiator ports the
    /// *initiator* issues requests; at target ports the *node* does.
    pub fn request_at(&self, port: PortId) -> (bool, &ReqCell, bool) {
        match port {
            PortId::Initiator(i) => self.init_request(i),
            PortId::Target(t) => self.target_request(t),
        }
    }

    /// Response-phase view for any port id.
    pub fn response_at(&self, port: PortId) -> (bool, &RspCell, bool) {
        match port {
            PortId::Initiator(i) => self.init_response(i),
            PortId::Target(t) => self.target_response(t),
        }
    }

    /// True when a request cell transfers at the port this cycle.
    pub fn request_fires(&self, port: PortId) -> bool {
        let (req, _, gnt) = self.request_at(port);
        req && gnt
    }

    /// True when a response cell transfers at the port this cycle.
    pub fn response_fires(&self, port: PortId) -> bool {
        let (r_req, _, r_gnt) = self.response_at(port);
        r_req && r_gnt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::NodeConfig;

    #[test]
    fn views_are_consistent() {
        let cfg = NodeConfig::reference();
        let mut rec = CycleRecord {
            cycle: 5,
            inputs: DutInputs::idle(&cfg),
            outputs: DutOutputs::idle(&cfg),
        };
        rec.inputs.initiator[1].req = true;
        rec.outputs.initiator[1].gnt = true;
        assert!(rec.request_fires(PortId::Initiator(1)));
        assert!(!rec.request_fires(PortId::Initiator(0)));
        assert!(!rec.response_fires(PortId::Initiator(1)));

        rec.outputs.target[0].req = true;
        assert!(!rec.request_fires(PortId::Target(0)), "no gnt yet");
        rec.inputs.target[0].gnt = true;
        assert!(rec.request_fires(PortId::Target(0)));
    }

    #[test]
    fn port_id_display() {
        assert_eq!(PortId::Initiator(2).to_string(), "init2");
        assert_eq!(PortId::Target(0).to_string(), "tgt0");
    }
}
