//! The declarative constraint model behind all generated stimulus.
//!
//! This is the layer the paper's `e`-language environment gets from
//! Specman: a test describes *distributions and constraints over
//! transaction fields* — operation kind, transfer size, destination
//! target, issue-time gap, burstiness — and a seeded solver turns the
//! description into a concrete, fully deterministic schedule of
//! [`TransactionPlan`]s.
//!
//! [`crate::TrafficProfile`] is re-expressed as sugar on top of this
//! model: [`crate::TrafficProfile::to_model`] lowers the familiar knobs
//! into a [`ConstraintModel`], and the lowering is *draw-for-draw
//! compatible* with the historical ad-hoc generator — the same `(profile,
//! config, initiator, seed)` produces byte-identical plans, so every
//! recorded experiment table stays valid.
//!
//! On top of the weighted single-field distributions the model supports
//! *implication (cross) constraints*: `when` one field predicate matches
//! a candidate transaction, `then` another must too, enforced by
//! rejection inside the solver loop. The coverage-closure engine
//! (`crates/cdg`) manipulates these models programmatically to steer
//! stimulus at open coverage holes.

use crate::traffic::TransactionPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stbus_protocol::{NodeConfig, OpKind, Opcode, TargetId, TransferSize};

/// Rejection-loop fuse: a model that cannot produce a legal transaction
/// within this many candidate draws is declared unsatisfiable.
const MAX_ATTEMPTS: usize = 10_000;

/// A predicate over one field of a candidate transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    /// The operation kind is one of these.
    KindIn(Vec<OpKind>),
    /// The transfer size is one of these.
    SizeIn(Vec<TransferSize>),
    /// The destination target is one of these.
    TargetIn(Vec<TargetId>),
}

impl Pred {
    fn involves_target(&self) -> bool {
        matches!(self, Pred::TargetIn(_))
    }

    fn matches(&self, op: Opcode, target: Option<TargetId>) -> bool {
        match self {
            Pred::KindIn(ks) => ks.contains(&op.kind()),
            Pred::SizeIn(ss) => ss.contains(&op.size()),
            Pred::TargetIn(ts) => target.is_some_and(|t| ts.contains(&t)),
        }
    }
}

/// An implication (cross) constraint: whenever `when` matches a candidate
/// transaction, `then` must match it too. Candidates that violate any
/// implication are rejected and redrawn.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Implication {
    /// The guard predicate.
    pub when: Pred,
    /// The obligation when the guard matches.
    pub then: Pred,
}

impl Implication {
    fn involves_target(&self) -> bool {
        self.when.involves_target() || self.then.involves_target()
    }

    fn holds(&self, op: Opcode, target: Option<TargetId>) -> bool {
        !self.when.matches(op, target) || self.then.matches(op, target)
    }
}

/// The declarative, configuration-independent description of one
/// initiator's random traffic: weighted distributions per field, an
/// issue-gap range, burstiness knobs and cross constraints, solved into
/// concrete plans by [`ConstraintModel::solve`].
///
/// Weights of zero remove a value from the distribution without changing
/// the draw sequence, so models stay comparable across biasing steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstraintModel {
    /// Number of transactions to issue.
    pub n_transactions: usize,
    /// Weighted operation kinds, drawn in the listed order.
    pub kinds: Vec<(OpKind, u32)>,
    /// Weighted transfer sizes (filtered to protocol-legal ones at solve
    /// time, so the model stays configuration-independent).
    pub sizes: Vec<(TransferSize, u32)>,
    /// Weighted destination targets. Empty = uniform over all of the
    /// configuration's targets.
    pub targets: Vec<(TargetId, u32)>,
    /// Minimum gap (cycles) between scheduled issues.
    pub gap_min: u64,
    /// Maximum gap (cycles); `gap_max == 0` saturates (no gap draw).
    pub gap_max: u64,
    /// Percent (0–100) of transactions grouped into 2-packet locked
    /// chunks.
    pub chunk_percent: u32,
    /// Percent (0–100) of transactions aimed at an unmapped address.
    pub unmapped_percent: u32,
    /// Request priority hint.
    pub pri: u8,
    /// Percent (0–100) of cycles on which the initiator throttles its
    /// response acceptance (`r_gnt` low).
    pub r_gnt_throttle_percent: u32,
    /// Size in bytes of the per-target address window the traffic stays
    /// inside (small windows create read-after-write interactions).
    pub window: u64,
    /// Implication constraints every generated transaction must satisfy.
    pub constraints: Vec<Implication>,
}

impl Default for ConstraintModel {
    fn default() -> Self {
        crate::traffic::TrafficProfile::default().to_model()
    }
}

/// Draws an index from a weighted list with a single
/// `gen_range(0..total)` call walking the entries in order — the same
/// stream the historical `OpMix::pick` and uniform `gen_range(0..len)`
/// draws consumed.
fn weighted_index<T>(entries: &[(T, u32)], rng: &mut StdRng) -> usize {
    let total: u32 = entries.iter().map(|(_, w)| w).sum();
    assert!(total > 0, "constraint model: all weights are zero");
    let mut x = rng.gen_range(0..total);
    for (i, (_, w)) in entries.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    unreachable!("weights exhausted")
}

impl ConstraintModel {
    /// True when `op` satisfies every constraint that does not mention
    /// the target field (checked before the target is drawn).
    fn kind_size_ok(&self, op: Opcode) -> bool {
        self.constraints
            .iter()
            .filter(|c| !c.involves_target())
            .all(|c| c.holds(op, None))
    }

    /// True when `(op, target)` satisfies every target-involving
    /// constraint.
    fn with_target_ok(&self, op: Opcode, target: TargetId) -> bool {
        self.constraints
            .iter()
            .filter(|c| c.involves_target())
            .all(|c| c.holds(op, Some(target)))
    }

    /// Solves the model into a deterministic transaction schedule for one
    /// initiator.
    ///
    /// The same `(model, config, initiator, seed)` always produces the
    /// same plans — the paper's "same test cases … with same seeds"
    /// requirement — and for models lowered from a
    /// [`crate::TrafficProfile`] the output is byte-identical to the
    /// historical ad-hoc generator.
    ///
    /// # Panics
    ///
    /// Panics when the model is unsatisfiable: all weights zero,
    /// `gap_min > gap_max`, or no candidate passing the protocol-legality
    /// filter and the constraints within a bounded number of draws.
    pub fn solve(&self, config: &NodeConfig, initiator: usize, seed: u64) -> Vec<TransactionPlan> {
        assert!(
            self.gap_min <= self.gap_max || self.gap_max == 0,
            "constraint model: gap_min {} > gap_max {}",
            self.gap_min,
            self.gap_max
        );
        let mut rng =
            StdRng::seed_from_u64(seed ^ (initiator as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let sizes: Vec<(TransferSize, u32)> = self
            .sizes
            .iter()
            .copied()
            .filter(|(s, _)| {
                Opcode::load(*s).legal_for(config.protocol)
                    || Opcode::store(*s).legal_for(config.protocol)
            })
            .collect();
        let sizes = if sizes.iter().all(|(_, w)| *w == 0) {
            vec![(TransferSize::B4, 1)]
        } else {
            sizes
        };
        let targets: Vec<(TargetId, u32)> = if self.targets.is_empty() {
            (0..config.n_targets)
                .map(|t| (TargetId(t as u8), 1))
                .collect()
        } else {
            self.targets.clone()
        };

        let mut plans = Vec::with_capacity(self.n_transactions);
        let mut cycle = 1u64;
        let mut chunk_follow = false;
        let mut chunk_target = TargetId(0);
        while plans.len() < self.n_transactions {
            // Draw a candidate (kind, size, target) tuple; reject until
            // protocol legality and every implication constraint hold.
            // The draw order — kind, size, then target and the chunk
            // percent — reproduces the historical generator exactly when
            // the constraint list is empty.
            let closing = chunk_follow;
            let mut attempts = 0usize;
            let (opcode, target, lock) = loop {
                attempts += 1;
                assert!(
                    attempts <= MAX_ATTEMPTS,
                    "constraint model unsatisfiable after {MAX_ATTEMPTS} draws \
                     (kinds {:?}, sizes {:?}, constraints {:?})",
                    self.kinds,
                    sizes,
                    self.constraints
                );
                let kind = self.kinds[weighted_index(&self.kinds, &mut rng)].0;
                let size = sizes[weighted_index(&sizes, &mut rng)].0;
                let op = Opcode::new(kind, size);
                if !op.legal_for(config.protocol) {
                    continue;
                }
                if !self.kind_size_ok(op) {
                    continue;
                }
                if closing {
                    // The chunk closer is pinned to the opener's target.
                    if !self.with_target_ok(op, chunk_target) {
                        continue;
                    }
                    break (op, chunk_target, false);
                }
                let t = targets[weighted_index(&targets, &mut rng)].0;
                let open_chunk = rng.gen_range(0..100) < self.chunk_percent
                    && plans.len() + 1 < self.n_transactions;
                if !self.with_target_ok(op, t) {
                    continue;
                }
                break (op, t, open_chunk);
            };
            if closing {
                chunk_follow = false;
            }
            if lock {
                chunk_follow = true;
                chunk_target = target;
            }
            let size = opcode.size().bytes() as u64;

            let expect_error = !lock
                && rng.gen_range(0..100) < self.unmapped_percent
                && config.address_map.unmapped_address().is_some();
            let addr = if expect_error {
                let base = config.address_map.unmapped_address().expect("checked");
                base + rng.gen_range(0..self.window / size.max(1)) * size
            } else {
                let base = config.address_map.base_of(target).unwrap_or(0);
                let span = config
                    .address_map
                    .size_of(target)
                    .unwrap_or(self.window)
                    .min(self.window);
                base + rng.gen_range(0..(span / size).max(1)) * size
            };

            let payload = if opcode.has_request_data() {
                (0..opcode.size().bytes()).map(|_| rng.gen()).collect()
            } else {
                Vec::new()
            };

            plans.push(TransactionPlan {
                issue_cycle: cycle,
                opcode,
                addr,
                payload,
                lock,
                pri: self.pri,
                expect_error,
            });

            // Chunk members are scheduled back-to-back; otherwise advance
            // by a random gap inside the configured range.
            if !chunk_follow {
                cycle += if self.gap_max == 0 {
                    self.gap_min
                } else {
                    rng.gen_range(self.gap_min..=self.gap_max)
                };
                cycle += 1;
            }
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{OpMix, TrafficProfile};
    use stbus_protocol::ProtocolType;

    fn schedule_fingerprint(plans: &[TransactionPlan]) -> u64 {
        plans.iter().fold(0u64, |h, p| {
            h.wrapping_mul(0x100000001B3).wrapping_add(
                p.issue_cycle
                    ^ p.addr
                    ^ ((p.opcode.size().bytes() as u64) << 32)
                    ^ p.payload.iter().map(|b| *b as u64).sum::<u64>(),
            )
        })
    }

    #[test]
    fn lowered_profile_reproduces_legacy_generator_exactly() {
        // The lowering contract: for every historical profile shape the
        // solver's draw sequence is byte-identical to the ad-hoc
        // generator this model replaced. The fingerprints below were
        // recorded from that generator before its removal; see also the
        // E3 table byte-compat check in EXPERIMENTS.md.
        let cfg = NodeConfig::reference();
        for (init, seed, frozen) in [
            (0usize, 42u64, 0x21268180e65fa97a_u64),
            (1, 7, 0x3df30c5a785de955),
            (2, 99, 0x3e1cf63039a69076),
        ] {
            let plans = TrafficProfile::default().to_model().solve(&cfg, init, seed);
            assert_eq!(plans.len(), 50);
            assert_eq!(
                schedule_fingerprint(&plans),
                frozen,
                "initiator {init} seed {seed} diverged from the legacy stream"
            );
        }
    }

    #[test]
    fn weights_bias_the_distribution() {
        let cfg = NodeConfig::reference();
        let model = ConstraintModel {
            n_transactions: 200,
            sizes: vec![(TransferSize::B4, 1), (TransferSize::B32, 9)],
            ..ConstraintModel::default()
        };
        let plans = model.solve(&cfg, 0, 9);
        let b32 = plans
            .iter()
            .filter(|p| p.opcode.size() == TransferSize::B32)
            .count();
        assert!(b32 > 120, "9:1 weight should dominate: {b32}/200");
    }

    #[test]
    fn zero_weight_removes_a_value() {
        let cfg = NodeConfig::reference();
        let model = ConstraintModel {
            n_transactions: 100,
            kinds: vec![(OpKind::Load, 0), (OpKind::Store, 1)],
            ..ConstraintModel::default()
        };
        for p in model.solve(&cfg, 0, 3) {
            assert_eq!(p.opcode.kind(), OpKind::Store);
        }
    }

    #[test]
    fn implication_constrains_kind_to_size() {
        let cfg = NodeConfig::reference();
        let model = ConstraintModel {
            n_transactions: 150,
            kinds: OpMix::full().weighted_kinds(),
            sizes: TransferSize::ALL.iter().map(|&s| (s, 1)).collect(),
            constraints: vec![Implication {
                when: Pred::KindIn(vec![OpKind::Store]),
                then: Pred::SizeIn(vec![TransferSize::B8]),
            }],
            ..ConstraintModel::default()
        };
        let plans = model.solve(&cfg, 1, 17);
        assert!(plans
            .iter()
            .any(|p| p.opcode.kind() == OpKind::Store && p.opcode.size() == TransferSize::B8));
        for p in &plans {
            if p.opcode.kind() == OpKind::Store {
                assert_eq!(p.opcode.size(), TransferSize::B8);
            }
        }
    }

    #[test]
    fn cross_constraint_pins_target_to_size() {
        let cfg = NodeConfig::reference();
        let model = ConstraintModel {
            n_transactions: 150,
            sizes: vec![(TransferSize::B4, 1), (TransferSize::B16, 1)],
            constraints: vec![Implication {
                when: Pred::TargetIn(vec![TargetId(1)]),
                then: Pred::SizeIn(vec![TransferSize::B4]),
            }],
            ..ConstraintModel::default()
        };
        let plans = model.solve(&cfg, 0, 23);
        let to_t1: Vec<_> = plans
            .iter()
            .filter(|p| !p.expect_error && cfg.address_map.decode(p.addr) == Some(TargetId(1)))
            .collect();
        assert!(!to_t1.is_empty());
        for p in to_t1 {
            assert_eq!(p.opcode.size(), TransferSize::B4);
        }
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn contradictory_constraints_panic() {
        let cfg = NodeConfig::reference();
        let model = ConstraintModel {
            kinds: vec![(OpKind::Load, 1)],
            constraints: vec![Implication {
                when: Pred::KindIn(vec![OpKind::Load]),
                then: Pred::KindIn(vec![OpKind::Store]),
            }],
            ..ConstraintModel::default()
        };
        model.solve(&cfg, 0, 1);
    }

    #[test]
    fn gap_range_bounds_issue_spacing() {
        let cfg = NodeConfig::reference();
        let model = ConstraintModel {
            n_transactions: 40,
            gap_min: 5,
            gap_max: 7,
            chunk_percent: 0,
            ..ConstraintModel::default()
        };
        let plans = model.solve(&cfg, 0, 4);
        for w in plans.windows(2) {
            let d = w[1].issue_cycle - w[0].issue_cycle;
            assert!((6..=8).contains(&d), "gap+1 in [6,8]: {d}");
        }
    }

    #[test]
    fn solver_respects_protocol_legality() {
        let cfg = NodeConfig::builder("t1")
            .protocol(ProtocolType::Type1)
            .bus_bytes(4)
            .build()
            .unwrap();
        let model = ConstraintModel {
            n_transactions: 80,
            kinds: OpMix::full().weighted_kinds(),
            sizes: TransferSize::ALL.iter().map(|&s| (s, 1)).collect(),
            ..ConstraintModel::default()
        };
        for p in model.solve(&cfg, 0, 7) {
            assert!(p.opcode.legal_for(ProtocolType::Type1), "{:?}", p.opcode);
        }
    }
}
