//! The target harness (BFM): a reactive memory-model slave with a
//! configurable latency and acceptance profile.

use crate::memory::SparseMemory;
use crate::record::{CycleRecord, PortId};
use crate::traffic::throttled;
use stbus_protocol::packet::{response_cells, PacketParams, RequestPacket, ResponsePacket};
use stbus_protocol::{NodeConfig, ReqCell, TargetPortIn};
use std::collections::VecDeque;

/// The speed personality of one target — the paper's out-of-order test
/// forces short transactions toward "different targets, having different
/// speed".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetProfile {
    /// Minimum response latency in cycles (≥ 1).
    pub min_latency: u64,
    /// Maximum response latency in cycles (≥ min).
    pub max_latency: u64,
    /// Percent (0–100) of cycles the target refuses new request cells.
    pub gnt_throttle_percent: u32,
}

impl Default for TargetProfile {
    fn default() -> Self {
        TargetProfile {
            min_latency: 2,
            max_latency: 6,
            gnt_throttle_percent: 0,
        }
    }
}

impl TargetProfile {
    /// A fast target (1–2 cycles, never throttles).
    pub fn fast() -> Self {
        TargetProfile {
            min_latency: 1,
            max_latency: 2,
            gnt_throttle_percent: 0,
        }
    }

    /// A slow target (10–20 cycles) that also throttles acceptance.
    pub fn slow() -> Self {
        TargetProfile {
            min_latency: 10,
            max_latency: 20,
            gnt_throttle_percent: 30,
        }
    }
}

#[derive(Debug)]
struct QueuedResponse {
    ready_at: u64,
    packet: ResponsePacket,
    sent: usize,
}

/// A bus-functional model of one target: accepts request packets,
/// executes them against a private [`SparseMemory`], and answers after a
/// deterministic per-transaction latency.
///
/// Like the initiator BFM it is a Moore machine, and all its "randomness"
/// (acceptance throttle, latency jitter) is a pure function of
/// `(seed, cycle)` or of the transaction identity — so a small timing
/// perturbation in one DUT view does not cascade.
#[derive(Debug)]
pub struct TargetBfm {
    index: usize,
    profile: TargetProfile,
    params: PacketParams,
    memory: SparseMemory,
    rx_cells: Vec<ReqCell>,
    queue: VecDeque<QueuedResponse>,
    seed: u64,
    accepted_packets: u64,
}

impl TargetBfm {
    /// Builds the BFM for target port `index`.
    pub fn new(config: &NodeConfig, index: usize, profile: TargetProfile, seed: u64) -> Self {
        TargetBfm {
            index,
            profile,
            params: PacketParams {
                bus_bytes: config.bus_bytes,
                protocol: config.protocol,
                endianness: config.endianness,
            },
            memory: SparseMemory::new(),
            rx_cells: Vec::new(),
            queue: VecDeque::new(),
            seed,
            accepted_packets: 0,
        }
    }

    /// The port index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Request packets fully accepted so far.
    pub fn accepted_packets(&self) -> u64 {
        self.accepted_packets
    }

    /// The memory content (for directed tests and debugging).
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// True when no response is queued or in flight.
    pub fn drained(&self) -> bool {
        self.queue.is_empty() && self.rx_cells.is_empty()
    }

    /// Deterministic per-transaction latency jitter.
    fn latency_for(&self, addr: u64, tid: u8) -> u64 {
        let span = self
            .profile
            .max_latency
            .saturating_sub(self.profile.min_latency)
            + 1;
        let x = addr
            .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
            .wrapping_add((tid as u64).wrapping_mul(0xC4CE_B9FE_1A85_EC53))
            .wrapping_add(self.seed);
        self.profile.min_latency + ((x ^ (x >> 33)) % span)
    }

    /// Produces the cycle-`cycle` port inputs (Moore).
    pub fn drive(&mut self, cycle: u64) -> TargetPortIn {
        let mut out = TargetPortIn {
            gnt: !throttled(
                self.seed,
                977 * self.index as u64 + 13,
                cycle,
                self.profile.gnt_throttle_percent,
            ),
            ..TargetPortIn::default()
        };
        if let Some(front) = self.queue.front() {
            if front.ready_at <= cycle {
                out.r_req = true;
                out.r_cell = front.packet.cells()[front.sent];
            }
        }
        out
    }

    /// Digests the cycle's record (call after the DUT stepped).
    pub fn observe(&mut self, rec: &CycleRecord) {
        // Request side: collect forwarded cells.
        if rec.request_fires(PortId::Target(self.index)) {
            let (_, cell, _) = rec.target_request(self.index);
            self.rx_cells.push(*cell);
            if cell.eop {
                let cells = std::mem::take(&mut self.rx_cells);
                let packet = RequestPacket::from_cells(cells);
                let response = self.execute(&packet);
                let ready_at = rec.cycle + self.latency_for(packet.addr(), packet.tid().0);
                self.queue.push_back(QueuedResponse {
                    ready_at,
                    packet: response,
                    sent: 0,
                });
                self.accepted_packets += 1;
            }
        }
        // Response side: advance delivery.
        if rec.response_fires(PortId::Target(self.index)) {
            let front = self.queue.front_mut().expect("presented a response");
            front.sent += 1;
            if front.sent == front.packet.len() {
                self.queue.pop_front();
            }
        }
    }

    /// Executes a packet against the memory and builds the response.
    fn execute(&mut self, packet: &RequestPacket) -> ResponsePacket {
        let opcode = packet.opcode();
        let size = opcode.size().bytes();
        let bus = self.params.bus_bytes as u64;
        let n_cells = response_cells(opcode, self.params.protocol, self.params.bus_bytes);

        // Loads/atomics return the pre-write content at the transfer
        // address.
        let old = self.memory.read(packet.addr(), size);
        if opcode.writes_memory() {
            // Apply each cell's lanes under its byte enables; lane k of a
            // cell maps to (bus-aligned cell base) + k.
            for cell in packet.cells() {
                if cell.be == 0 {
                    continue;
                }
                let base = cell.addr & !(bus - 1);
                let lanes = cell.data.lanes(self.params.bus_bytes).to_vec();
                self.memory.write_masked(base, &lanes, cell.be);
            }
        }
        if opcode.has_response_data() {
            ResponsePacket::ok_with_data(
                packet.src(),
                packet.tid(),
                &old,
                self.params.bus_bytes,
                n_cells,
            )
        } else {
            ResponsePacket::ok_ack(packet.src(), packet.tid(), n_cells)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_protocol::{
        DutInputs, DutOutputs, InitiatorId, NodeConfig, Opcode, TransactionId, TransferSize,
    };

    fn cfg() -> NodeConfig {
        NodeConfig::reference()
    }

    fn feed_packet(
        bfm: &mut TargetBfm,
        config: &NodeConfig,
        packet: &RequestPacket,
        start: u64,
    ) -> u64 {
        let mut cycle = start;
        for cell in packet.cells() {
            let mut outputs = DutOutputs::idle(config);
            outputs.target[bfm.index()].req = true;
            outputs.target[bfm.index()].cell = *cell;
            let mut inputs = DutInputs::idle(config);
            inputs.target[bfm.index()].gnt = true;
            bfm.observe(&CycleRecord {
                cycle,
                inputs,
                outputs,
            });
            cycle += 1;
        }
        cycle
    }

    fn params(config: &NodeConfig) -> PacketParams {
        PacketParams {
            bus_bytes: config.bus_bytes,
            protocol: config.protocol,
            endianness: config.endianness,
        }
    }

    #[test]
    fn store_then_load_round_trips_through_memory() {
        let c = cfg();
        let mut bfm = TargetBfm::new(&c, 0, TargetProfile::fast(), 7);
        let payload: Vec<u8> = (0..16).collect();
        let store = RequestPacket::build(
            Opcode::store(TransferSize::B16),
            0x40,
            &payload,
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        let t = feed_packet(&mut bfm, &c, &store, 1);
        assert_eq!(bfm.accepted_packets(), 1);
        assert_eq!(bfm.memory().read(0x40, 16), payload);

        let load = RequestPacket::build(
            Opcode::load(TransferSize::B16),
            0x40,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(1),
            0,
            false,
        )
        .unwrap();
        let t = feed_packet(&mut bfm, &c, &load, t);

        // Wait for the response to become ready, then drain it.
        let mut got = Vec::new();
        for cycle in t..t + 40 {
            let pin = bfm.drive(cycle);
            if pin.r_req && pin.r_cell.tid == TransactionId(1) {
                got.extend_from_slice(pin.r_cell.data.lanes(c.bus_bytes));
                let mut inputs = DutInputs::idle(&c);
                inputs.target[0] = pin;
                let mut outputs = DutOutputs::idle(&c);
                outputs.target[0].r_gnt = true;
                bfm.observe(&CycleRecord {
                    cycle,
                    inputs,
                    outputs,
                });
                if pin.r_cell.eop {
                    break;
                }
            } else if pin.r_req {
                // Drain the store ack first.
                let mut inputs = DutInputs::idle(&c);
                inputs.target[0] = pin;
                let mut outputs = DutOutputs::idle(&c);
                outputs.target[0].r_gnt = true;
                bfm.observe(&CycleRecord {
                    cycle,
                    inputs,
                    outputs,
                });
            }
        }
        got.truncate(16);
        assert_eq!(got, payload);
        assert!(bfm.drained());
    }

    #[test]
    fn latency_respects_profile_bounds() {
        let c = cfg();
        let profile = TargetProfile {
            min_latency: 5,
            max_latency: 9,
            gnt_throttle_percent: 0,
        };
        let bfm = TargetBfm::new(&c, 1, profile, 3);
        for addr in (0..50u64).map(|k| k * 64) {
            let l = bfm.latency_for(addr, 0);
            assert!((5..=9).contains(&l), "latency {l}");
        }
    }

    #[test]
    fn sub_bus_store_respects_byte_enables() {
        let c = cfg();
        let mut bfm = TargetBfm::new(&c, 0, TargetProfile::fast(), 1);
        // Pre-fill the word so clobbering is visible.
        bfm.memory.write(0x100, &[0xEE; 8]);
        let store = RequestPacket::build(
            Opcode::store(TransferSize::B2),
            0x102,
            &[0xAB, 0xCD],
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        feed_packet(&mut bfm, &c, &store, 1);
        assert_eq!(
            bfm.memory().read(0x100, 8),
            vec![0xEE, 0xEE, 0xAB, 0xCD, 0xEE, 0xEE, 0xEE, 0xEE]
        );
    }

    #[test]
    fn throttle_profile_lowers_gnt() {
        let c = cfg();
        let mut bfm = TargetBfm::new(&c, 0, TargetProfile::slow(), 5);
        let low = (0..300).filter(|cy| !bfm.drive(*cy).gnt).count();
        assert!((40..160).contains(&low), "≈30%: {low}");
    }

    #[test]
    fn flush_gets_bare_ack_and_no_memory_effect() {
        let c = cfg();
        let mut bfm = TargetBfm::new(&c, 0, TargetProfile::fast(), 1);
        bfm.memory.write(0x80, &[7; 8]);
        let flush = RequestPacket::build(
            Opcode::new(stbus_protocol::OpKind::Flush, TransferSize::B8),
            0x80,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        feed_packet(&mut bfm, &c, &flush, 1);
        assert_eq!(bfm.memory().read(0x80, 8), vec![7; 8], "memory untouched");
        // Its response is a single dataless OK cell.
        for cycle in 2..20 {
            let pin = bfm.drive(cycle);
            if pin.r_req {
                assert!(pin.r_cell.eop);
                assert_eq!(pin.r_cell.kind, stbus_protocol::RspKind::Ok);
                assert_eq!(pin.r_cell.data.lanes(8), &[0; 8]);
                return;
            }
        }
        panic!("no ack presented");
    }

    #[test]
    fn swap_returns_old_value_and_writes_new() {
        let c = cfg();
        let mut bfm = TargetBfm::new(&c, 0, TargetProfile::fast(), 1);
        bfm.memory.write(0x40, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let swap = RequestPacket::build(
            Opcode::new(stbus_protocol::OpKind::Swap, TransferSize::B8),
            0x40,
            &[9; 8],
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        feed_packet(&mut bfm, &c, &swap, 1);
        assert_eq!(bfm.memory().read(0x40, 8), vec![9; 8], "swapped in");
        for cycle in 2..20 {
            let pin = bfm.drive(cycle);
            if pin.r_req {
                assert_eq!(pin.r_cell.data.lanes(8), &[1, 2, 3, 4, 5, 6, 7, 8]);
                return;
            }
        }
        panic!("no response presented");
    }

    #[test]
    fn latency_is_deterministic_across_instances() {
        // The timing the alignment comparison relies on: two BFMs with the
        // same seed present responses at identical cycles.
        let c = cfg();
        let mut a = TargetBfm::new(&c, 0, TargetProfile::default(), 11);
        let mut b = TargetBfm::new(&c, 0, TargetProfile::default(), 11);
        let load = RequestPacket::build(
            Opcode::load(TransferSize::B8),
            0x100,
            &[],
            params(&c),
            InitiatorId(0),
            TransactionId(0),
            0,
            false,
        )
        .unwrap();
        feed_packet(&mut a, &c, &load, 1);
        feed_packet(&mut b, &c, &load, 1);
        for cycle in 0..40 {
            assert_eq!(a.drive(cycle).r_req, b.drive(cycle).r_req, "cycle {cycle}");
        }
    }

    #[test]
    fn responses_delivered_in_fifo_order() {
        let c = cfg();
        let mut bfm = TargetBfm::new(&c, 0, TargetProfile::fast(), 1);
        // Two loads back to back.
        for (addr, tid) in [(0x0u64, 0u8), (0x40, 1)] {
            let load = RequestPacket::build(
                Opcode::load(TransferSize::B8),
                addr,
                &[],
                params(&c),
                InitiatorId(0),
                TransactionId(tid),
                0,
                false,
            )
            .unwrap();
            feed_packet(&mut bfm, &c, &load, 1);
        }
        // The first presented response must be tid 0 even if tid 1's
        // jittered latency happens to be shorter (per-target FIFO).
        for cycle in 2..40 {
            let pin = bfm.drive(cycle);
            if pin.r_req {
                assert_eq!(pin.r_cell.tid, TransactionId(0));
                break;
            }
        }
    }
}
