//! DUT-view factory: the Rust equivalent of the paper's wrapper files.

use stbus_bca::{BcaNode, Fidelity};
use stbus_protocol::{DutView, NodeConfig, ViewKind};
use stbus_rtl::RtlNode;

/// Elaborates one design view for a configuration.
///
/// The BCA view is built at its realistic default fidelity
/// ([`Fidelity::Relaxed`]); use [`stbus_bca::BcaNode::new`] directly for
/// exact-fidelity or bug-injection runs.
pub fn build_view(config: &NodeConfig, kind: ViewKind) -> Box<dyn DutView> {
    match kind {
        ViewKind::Rtl => Box::new(RtlNode::new(config.clone())),
        ViewKind::Bca => Box::new(BcaNode::new(config.clone(), Fidelity::Relaxed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_both_views() {
        let cfg = NodeConfig::reference();
        assert_eq!(build_view(&cfg, ViewKind::Rtl).view_kind(), ViewKind::Rtl);
        assert_eq!(build_view(&cfg, ViewKind::Bca).view_kind(), ViewKind::Bca);
    }
}
