//! DUT-view factory: the Rust equivalent of the paper's wrapper files.

use sim_kernel::SimBackend;
use stbus_bca::{BcaNode, Fidelity};
use stbus_protocol::{DutView, NodeConfig, ViewKind};
use stbus_rtl::RtlNode;
use stbus_tlm::TlmNode;

/// Elaborates one design view for a configuration on the default (event)
/// simulation backend.
///
/// The BCA view is built at its realistic default fidelity
/// ([`Fidelity::Relaxed`]); use [`stbus_bca::BcaNode::new`] directly for
/// exact-fidelity or bug-injection runs.
pub fn build_view(config: &NodeConfig, kind: ViewKind) -> Box<dyn DutView> {
    build_view_with_engine(config, kind, SimBackend::Event)
}

/// Elaborates one design view on a specific simulation backend.
///
/// Only the RTL view runs on a kernel, so `engine` selects between the
/// event-driven reference scheduler and the levelized compiled backend
/// there; the BCA and TLM views bypass the kernel entirely and ignore
/// it.
pub fn build_view_with_engine(
    config: &NodeConfig,
    kind: ViewKind,
    engine: SimBackend,
) -> Box<dyn DutView> {
    match kind {
        ViewKind::Rtl => Box::new(RtlNode::with_engine(config.clone(), engine)),
        ViewKind::Bca => Box::new(BcaNode::new(config.clone(), Fidelity::Relaxed)),
        ViewKind::Tlm => Box::new(TlmNode::new(config.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_view() {
        let cfg = NodeConfig::reference();
        for kind in ViewKind::ALL {
            assert_eq!(build_view(&cfg, kind).view_kind(), kind);
        }
    }

    #[test]
    fn factory_builds_rtl_on_both_engines() {
        let cfg = NodeConfig::reference();
        for engine in SimBackend::ALL {
            let v = build_view_with_engine(&cfg, ViewKind::Rtl, engine);
            assert_eq!(v.view_kind(), ViewKind::Rtl);
        }
    }
}
