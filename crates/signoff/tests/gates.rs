//! End-to-end gate behavior of the sign-off engine, positive and
//! negative. The negative cases are the point: a sign-off gate that
//! cannot fail proves nothing, so deleting a required waiver and
//! injecting a catalogued RTL defect must each flip the verdict and name
//! the offending branch or port inside `signoff.json`.

use signoff::{library_candidates, run_signoff, SignoffOptions, WaiverFile};
use stbus_protocol::NodeConfig;
use stbus_rtl::RtlBug;

fn options() -> SignoffOptions {
    SignoffOptions {
        jobs: 2,
        ..SignoffOptions::default()
    }
}

fn reference_candidates() -> Vec<signoff::Candidate> {
    library_candidates(30, &[1, 2])
}

#[test]
fn reference_config_signs_off_clean() {
    let config = NodeConfig::reference();
    let waivers = WaiverFile::template(&config);
    let report =
        run_signoff(&config, &waivers, &reference_candidates(), &options()).expect("engine runs");
    let json = report.signoff_json().render_pretty();
    assert!(
        report.passed(),
        "reference sign-off failed:\n{}\n{json}",
        report.table()
    );
    // The minimized regression is a strict subset of the candidate pool.
    assert!(report.selected.len() < report.candidate_units);
    assert!(report.uncoverable.is_empty());
    assert!(json.contains("\"schema\": \"stbus-signoff/1\""));
    assert!(json.contains("\"passed\": true"));
    // No wall-clock leaks into the document.
    assert!(!json.contains("wall_ms"));
    assert!(!json.contains("elapsed"));
}

#[test]
fn deleting_a_required_waiver_fails_the_line_gate_and_names_the_branch() {
    let config = NodeConfig::reference();
    let mut waivers = WaiverFile::template(&config);
    let removed = waivers.waivers.remove(0);
    assert_eq!(removed.branch, "node/lane_saturated");
    let report =
        run_signoff(&config, &waivers, &reference_candidates(), &options()).expect("engine runs");
    assert!(!report.passed());
    assert!(!report.line_gate().passed);
    assert_eq!(report.justified.unjustified, ["node/lane_saturated"]);
    // The document names the unjustified branch.
    let json = report.signoff_json().render_pretty();
    assert!(json.contains("\"passed\": false"));
    assert!(json.contains("node/lane_saturated"));
    assert!(json.contains("unjustified branch node/lane_saturated"));
}

#[test]
fn injected_rtl_bug_r3_fails_the_alignment_gate_and_names_the_port() {
    // R3 (dead priority-port register) is only observable where the
    // arbiters actually consume programmed priorities — the same
    // variable-priority hunt shape the mutation-qualification campaign
    // uses. On the LRU reference node the defect is structurally masked.
    let config = catg::tests_lib::qualification::prog_hunt();
    let waivers = WaiverFile::template(&config);
    let report = run_signoff(
        &config,
        &waivers,
        &reference_candidates(),
        &SignoffOptions {
            rtl_bugs: vec![RtlBug::UnsampledPriorityPort],
            ..options()
        },
    )
    .expect("engine runs");
    assert!(
        !report.passed(),
        "R3 must not sign off:\n{}",
        report.table()
    );
    let gate = report.alignment_gate();
    assert!(!gate.passed, "R3 must break >=99% alignment");
    assert!(
        !gate.detail.is_empty(),
        "alignment failure must name what went wrong"
    );
    // The offending port appears in the document's detail lines.
    let json = report.signoff_json().render_pretty();
    assert!(json.contains("\"passed\": false"));
    assert!(
        gate.detail.iter().any(|d| d.starts_with("port ")),
        "detail names a port: {:?}",
        gate.detail
    );
}
