//! Worker-count determinism: `signoff.json` is the audit artifact of a
//! sign-off, so it must be a pure function of the inputs — byte-identical
//! whether the engine fanned out on one worker or four (mirrors
//! `regression/tests/determinism.rs` for the campaign manifest).

use signoff::{library_candidates, run_signoff, SignoffOptions, WaiverFile};
use stbus_protocol::NodeConfig;

fn signoff(jobs: usize) -> (String, String) {
    let config = NodeConfig::reference();
    let waivers = WaiverFile::template(&config);
    let candidates = library_candidates(30, &[1, 2]);
    // A fresh (sink-less) telemetry handle per run: the metrics registry
    // still records, so the snapshot embedded in the document is part of
    // what must not depend on the worker count.
    let options = SignoffOptions {
        jobs,
        ..SignoffOptions::default()
    };
    let report = run_signoff(&config, &waivers, &candidates, &options).expect("engine runs");
    (report.signoff_json().render_pretty(), report.table())
}

#[test]
fn signoff_json_is_byte_identical_across_worker_counts() {
    let (serial_json, serial_table) = signoff(1);
    let (parallel_json, parallel_table) = signoff(4);
    assert_eq!(serial_json, parallel_json);
    assert_eq!(serial_table, parallel_table);
}
