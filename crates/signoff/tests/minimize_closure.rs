//! The minimizer against real E10 closure trajectories: the greedy
//! replay set distilled from a recorded `closure.json` must still merge
//! to 100% functional coverage, on the 3×2 reference node and on the
//! 32×32 crossbar whose coupon-collector tail is what made directed
//! closure necessary in the first place. Stability matters as much as
//! coverage — a sign-off regression that reshuffles on every rerun is
//! not a fixed regression.

use std::collections::BTreeSet;

use cdg::{close_coverage, parse_closure_replay, ClosureOptions, Recipe};
use signoff::{closure_candidates, minimize, CoverUnit};
use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType};

/// Runs a closure campaign, round-trips it through the `closure.json`
/// document, and returns the per-`(test, seed)` functional footprints
/// plus the declared-bin universe.
fn trajectory_footprints(
    config: &NodeConfig,
    batch: usize,
) -> (Vec<CoverUnit>, Vec<catg::CoverageReport>, BTreeSet<String>) {
    let report = close_coverage(
        config,
        &Recipe::narrow(config),
        &ClosureOptions {
            tests_per_batch: batch,
            ..ClosureOptions::default()
        },
    );
    assert!(report.closed, "campaign must close before minimizing");
    let replay = parse_closure_replay(&report.closure_json().render_pretty())
        .expect("closure.json round-trips");
    let candidates = closure_candidates(&replay);

    let bench = catg::Testbench::new(config.clone(), catg::TestbenchOptions::default());
    let mut units = Vec::new();
    let mut covs = Vec::new();
    let mut universe = BTreeSet::new();
    for c in &candidates {
        for &seed in &c.seeds {
            let mut rtl = stbus_rtl::RtlNode::new(config.clone());
            let result = bench.run(&mut rtl, &c.spec, seed);
            let mut bins = BTreeSet::new();
            for g in &result.coverage.groups {
                for (bin, hits) in &g.bins {
                    let label = format!("{}/{}", g.name, bin);
                    universe.insert(label.clone());
                    if *hits > 0 {
                        bins.insert(label);
                    }
                }
            }
            units.push(CoverUnit {
                label: format!("{}@{seed}", c.test),
                bins,
            });
            covs.push(result.coverage);
        }
    }
    (units, covs, universe)
}

fn assert_minimized_replay_closes(config: &NodeConfig, batch: usize) {
    let (units, covs, universe) = trajectory_footprints(config, batch);
    let minimized = minimize(&universe, &units);
    assert!(minimized.full(), "uncoverable: {:?}", minimized.uncovered);
    // Strictly fewer runs than the recorded trajectory (the point of the
    // exercise), and merging exactly the chosen runs re-closes coverage.
    assert!(minimized.selected.len() < units.len());
    let mut merged = covs[minimized.selected[0]].clone();
    for &i in &minimized.selected[1..] {
        merged.merge(&covs[i]);
    }
    assert!(
        (merged.coverage() - 1.0).abs() < 1e-12,
        "minimized replay set only reaches {:.2}%",
        merged.coverage() * 100.0
    );
    // Order stability: same candidates, same universe, same picks.
    assert_eq!(minimized, minimize(&universe, &units));
}

#[test]
fn reference_trajectory_minimizes_and_recloses() {
    assert_minimized_replay_closes(&NodeConfig::reference(), 4);
}

/// The 32×32 campaign simulates tens of thousands of transactions per
/// iteration; in an unoptimized build that is minutes of wall clock, so
/// the test is ignored by default and run in release by the CI signoff
/// job (`cargo test --release -p stbus-signoff -- --ignored`).
#[test]
#[ignore = "debug-build wall clock; CI runs it in release"]
fn crossbar_32x32_trajectory_minimizes_and_recloses() {
    let hard = NodeConfig::builder("hard_32x32")
        .initiators(32)
        .targets(32)
        .bus_bytes(8)
        .protocol(ProtocolType::Type3)
        .architecture(Architecture::FullCrossbar)
        .arbitration(ArbitrationKind::Lru)
        .prog_port(true)
        .max_outstanding(4)
        .build()
        .expect("valid");
    assert_minimized_replay_closes(&hard, 4);
}
