//! Properties of the waiver validator over random configurations.
//!
//! The validator is the trust anchor of the justified-line gate, so the
//! guarantees are stated as properties, not examples: whatever the
//! configuration shape, (1) every accepted waiver cites a branch that
//! exists in the elaborated netlist, (2) an accepted waiver never
//! justifies a branch a real run can hit — if a branch with a waiver
//! fires, the dead-waiver lint reports it rather than the gate quietly
//! passing, and (3) citing a reachable branch or a foreign predicate is
//! rejected outright.

use proptest::prelude::*;
use signoff::{JustifiedCoverage, WaiverFile};
use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType};
use stbus_rtl::{ProbePoint, RtlNode};

fn arb_config() -> impl Strategy<Value = NodeConfig> {
    let protocol = prop_oneof![
        Just(ProtocolType::Type1),
        Just(ProtocolType::Type2),
        Just(ProtocolType::Type3),
    ];
    let arch = prop_oneof![
        Just(Architecture::SharedBus),
        Just(Architecture::FullCrossbar),
        (1usize..=4).prop_map(|lanes| Architecture::PartialCrossbar { lanes }),
    ];
    let arbitration = prop_oneof![
        Just(ArbitrationKind::FixedPriority),
        Just(ArbitrationKind::VariablePriority),
        Just(ArbitrationKind::Lru),
        Just(ArbitrationKind::LatencyBased),
        Just(ArbitrationKind::BandwidthLimited),
    ];
    (
        1usize..=5,
        1usize..=5,
        prop_oneof![Just(4usize), Just(8), Just(16)],
        protocol,
        arch,
        arbitration,
        any::<bool>(),
    )
        .prop_map(
            |(initiators, targets, bus, protocol, arch, arbitration, prog)| {
                NodeConfig::builder("prop")
                    .initiators(initiators)
                    .targets(targets)
                    .bus_bytes(bus)
                    .protocol(protocol)
                    .architecture(arch)
                    .arbitration(arbitration)
                    .prog_port(prog)
                    .build()
                    .expect("generated configs are valid")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every waiver the validator accepts cites a branch present in the
    /// elaborated netlist of the configuration under sign-off.
    #[test]
    fn accepted_waivers_cite_elaborated_branches(config in arb_config()) {
        let file = WaiverFile::template(&config);
        prop_assert_eq!(file.validate(&config), Ok(()));
        let node = RtlNode::new(config);
        let netlist = node.activity_coverage();
        for w in &file.waivers {
            prop_assert!(
                netlist.branch(&w.branch).is_some(),
                "accepted waiver cites `{}`, not in the elaborated netlist",
                w.branch
            );
        }
    }

    /// A short random run never hits a waived branch: the reachability
    /// predicates are exact, so justified coverage can only ever excuse
    /// genuinely dead code. Equivalently, the dead-waiver lint is the
    /// only way a hit waived branch can surface — never a passing gate.
    #[test]
    fn no_accepted_waiver_covers_a_hit_branch(config in arb_config(), seed in 1u64..=1000) {
        let file = WaiverFile::template(&config);
        prop_assert_eq!(file.validate(&config), Ok(()));
        let bench = catg::Testbench::new(config.clone(), catg::TestbenchOptions::default());
        let mut rtl = RtlNode::new(config.clone());
        let spec = catg::tests_lib::random_mixed(10);
        bench.run(&mut rtl, &spec, seed);
        let activity = rtl.activity_coverage();
        for w in &file.waivers {
            let hits = activity.branch(&w.branch).map_or(0, |b| b.hits);
            prop_assert_eq!(
                hits, 0,
                "waived branch `{}` was hit {} times under seed {}",
                &w.branch, hits, seed
            );
        }
        // And the lint side of the contract: had a waived branch fired,
        // JustifiedCoverage must report it dead, never justified.
        let jc = JustifiedCoverage::new(&activity, &config, &file);
        for j in &jc.justified {
            prop_assert_eq!(activity.branch(&j.branch).map_or(0, |b| b.hits), 0);
        }
        prop_assert!(jc.dead_waivers.is_empty());
    }

    /// Waiving a branch the configuration can reach — or citing a
    /// predicate that is not the one guarding the branch — is rejected.
    #[test]
    fn reachable_or_misattributed_waivers_are_rejected(config in arb_config(), pick in 0usize..64) {
        let reachable: Vec<&ProbePoint> = ProbePoint::ALL
            .iter()
            .filter(|p| p.reachable_in(&config))
            .collect();
        prop_assume!(!reachable.is_empty());
        let probe = reachable[pick % reachable.len()];
        let file = WaiverFile {
            waivers: vec![signoff::Waiver {
                branch: probe.branch_name(),
                predicate: probe.predicate_id().to_owned(),
                justification: "bogus".to_owned(),
                owner: "prop".to_owned(),
            }],
        };
        prop_assert!(file.validate(&config).is_err());

        // Same branch, foreign predicate: also rejected, even when the
        // branch is genuinely unreachable.
        let mut template = WaiverFile::template(&config);
        if let Some(w) = template.waivers.first_mut() {
            w.predicate = "no-such-predicate".to_owned();
            prop_assert!(template.validate(&config).is_err());
        }
    }
}
