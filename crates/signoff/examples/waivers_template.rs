//! Prints the waiver-file template (`stbus-waivers/1`) for a built-in
//! configuration — the starting point an engineer edits justifications
//! and ownership into before committing it next to the config:
//!
//! ```text
//! cargo run -p stbus-signoff --example waivers_template [reference|prog_hunt|t2_hunt|partial_hunt] > waivers.json
//! ```

use signoff::WaiverFile;
use stbus_protocol::NodeConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or("reference".to_owned());
    let config = match name.as_str() {
        "reference" => NodeConfig::reference(),
        "prog_hunt" => catg::tests_lib::qualification::prog_hunt(),
        "t2_hunt" => catg::tests_lib::qualification::t2_hunt(),
        "partial_hunt" => catg::tests_lib::qualification::partial_hunt(),
        other => {
            eprintln!("unknown configuration `{other}`");
            std::process::exit(2);
        }
    };
    println!(
        "{}",
        WaiverFile::template(&config).to_json().render_pretty()
    );
}
