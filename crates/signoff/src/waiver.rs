//! The versioned waiver-file format ([`WAIVERS_SCHEMA`]).
//!
//! A waiver is the auditable unit of the paper's "100% of *justified*
//! code" goal: one never-executed branch point, the structural predicate
//! that makes it unreachable in the configuration under sign-off, a
//! justification text, and an owner who signed it. Validation is strict
//! by design — a waiver citing an unknown branch, the wrong predicate, or
//! a branch the configuration can actually reach is an error, not a
//! warning, because every such entry would silently shrink the coverage
//! goal.

use stbus_protocol::NodeConfig;
use stbus_rtl::ProbePoint;
use std::collections::BTreeSet;
use std::fmt;
use telemetry::Json;

/// Schema identifier of the waiver file format.
pub const WAIVERS_SCHEMA: &str = "stbus-waivers/1";

/// One justified branch point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// The kernel branch label (`"node/<probe>"`) being waived.
    pub branch: String,
    /// The cited reachability predicate
    /// ([`ProbePoint::predicate_id`]); must be the predicate registered
    /// for the branch, and must evaluate *unreachable* in the
    /// configuration under sign-off.
    pub predicate: String,
    /// Why the branch is dead code in this configuration.
    pub justification: String,
    /// Who signed the waiver.
    pub owner: String,
}

/// A parsed waiver file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaiverFile {
    /// The waivers, in file order.
    pub waivers: Vec<Waiver>,
}

/// One validation failure. The engine refuses to run the gates while any
/// of these exist: an invalid waiver file is a broken sign-off basis, not
/// a degraded one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaiverError {
    /// The cited branch is not in the elaborated netlist.
    UnknownBranch {
        /// The unmatched branch label.
        branch: String,
    },
    /// The cited predicate is not the one registered for the branch.
    WrongPredicate {
        /// The waived branch.
        branch: String,
        /// What the waiver cited.
        cited: String,
        /// The predicate actually guarding the branch.
        expected: String,
    },
    /// The predicate holds in this configuration — the branch is
    /// reachable, so it cannot be waived.
    ReachableBranch {
        /// The waived branch.
        branch: String,
        /// The cited predicate.
        predicate: String,
    },
    /// The same branch is waived more than once.
    DuplicateBranch {
        /// The repeated branch label.
        branch: String,
    },
}

impl fmt::Display for WaiverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaiverError::UnknownBranch { branch } => {
                write!(f, "waiver cites unknown branch `{branch}`")
            }
            WaiverError::WrongPredicate {
                branch,
                cited,
                expected,
            } => write!(
                f,
                "waiver for `{branch}` cites predicate `{cited}` but the branch is guarded by `{expected}`"
            ),
            WaiverError::ReachableBranch { branch, predicate } => write!(
                f,
                "waiver for `{branch}` is invalid: predicate `{predicate}` holds in this configuration (the branch is reachable)"
            ),
            WaiverError::DuplicateBranch { branch } => {
                write!(f, "branch `{branch}` is waived more than once")
            }
        }
    }
}

impl Waiver {
    fn to_json(&self) -> Json {
        Json::obj([
            ("branch", Json::from(self.branch.clone())),
            ("predicate", Json::from(self.predicate.clone())),
            ("justification", Json::from(self.justification.clone())),
            ("owner", Json::from(self.owner.clone())),
        ])
    }
}

impl WaiverFile {
    /// The waiver set every missed-but-unreachable branch of `config`
    /// needs — the starting point an engineer edits justifications and
    /// ownership into. The template is exactly the set the old E6
    /// experiment derived implicitly from [`ProbePoint::reachable_in`].
    pub fn template(config: &NodeConfig) -> WaiverFile {
        WaiverFile {
            waivers: ProbePoint::ALL
                .iter()
                .filter(|p| !p.reachable_in(config))
                .map(|p| Waiver {
                    branch: p.branch_name(),
                    predicate: p.predicate_id().to_owned(),
                    justification: format!(
                        "structurally unreachable in `{}`: the branch requires that {}",
                        config.name,
                        p.predicate_description()
                    ),
                    owner: "verification".to_owned(),
                })
                .collect(),
        }
    }

    /// Static validation against the elaborated netlist: every waiver
    /// must cite a known branch, the branch's registered predicate, and
    /// that predicate must evaluate *unreachable* under `config`. Returns
    /// every failure, not just the first.
    pub fn validate(&self, config: &NodeConfig) -> Result<(), Vec<WaiverError>> {
        let mut errors = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for w in &self.waivers {
            let Some(probe) = ProbePoint::from_branch_name(&w.branch) else {
                errors.push(WaiverError::UnknownBranch {
                    branch: w.branch.clone(),
                });
                continue;
            };
            if !seen.insert(&w.branch) {
                errors.push(WaiverError::DuplicateBranch {
                    branch: w.branch.clone(),
                });
                continue;
            }
            if w.predicate != probe.predicate_id() {
                errors.push(WaiverError::WrongPredicate {
                    branch: w.branch.clone(),
                    cited: w.predicate.clone(),
                    expected: probe.predicate_id().to_owned(),
                });
                continue;
            }
            if probe.reachable_in(config) {
                errors.push(WaiverError::ReachableBranch {
                    branch: w.branch.clone(),
                    predicate: w.predicate.clone(),
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The waiver covering `branch`, if any.
    pub fn for_branch(&self, branch: &str) -> Option<&Waiver> {
        self.waivers.iter().find(|w| w.branch == branch)
    }

    /// The machine-readable form ([`WAIVERS_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(WAIVERS_SCHEMA)),
            (
                "waivers",
                Json::Arr(self.waivers.iter().map(Waiver::to_json).collect()),
            ),
        ])
    }

    /// Parses a rendered waiver document, verifying the schema tag.
    pub fn parse(text: &str) -> Result<WaiverFile, String> {
        let json = Json::parse(text).map_err(|e| format!("waiver file: invalid JSON: {e}"))?;
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("waiver file: missing `schema`")?;
        if schema != WAIVERS_SCHEMA {
            return Err(format!(
                "waiver file: schema `{schema}` is not `{WAIVERS_SCHEMA}`"
            ));
        }
        let entries = json
            .get("waivers")
            .and_then(Json::as_arr)
            .ok_or("waiver file: missing `waivers` array")?;
        let mut waivers = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            let field = |key: &str| -> Result<String, String> {
                entry
                    .get(key)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("waiver file: waivers[{i}]: missing string `{key}`"))
            };
            waivers.push(Waiver {
                branch: field("branch")?,
                predicate: field("predicate")?,
                justification: field("justification")?,
                owner: field("owner")?,
            });
        }
        Ok(WaiverFile { waivers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_for_the_reference_config_validates_clean() {
        let config = NodeConfig::reference();
        let file = WaiverFile::template(&config);
        // E6: lane_saturated, fifo_full and order_hold are dead code on
        // the reference node.
        let branches: Vec<_> = file.waivers.iter().map(|w| w.branch.as_str()).collect();
        assert_eq!(
            branches,
            ["node/lane_saturated", "node/fifo_full", "node/order_hold"]
        );
        assert_eq!(file.validate(&config), Ok(()));
    }

    #[test]
    fn unknown_branch_and_wrong_predicate_are_errors() {
        let config = NodeConfig::reference();
        let mut file = WaiverFile::template(&config);
        file.waivers.push(Waiver {
            branch: "node/imaginary".to_owned(),
            predicate: "always".to_owned(),
            justification: "x".to_owned(),
            owner: "x".to_owned(),
        });
        file.waivers[0].predicate = "prog-port".to_owned();
        let errors = file.validate(&config).unwrap_err();
        assert!(errors.iter().any(
            |e| matches!(e, WaiverError::UnknownBranch { branch } if branch == "node/imaginary")
        ));
        assert!(errors.iter().any(|e| matches!(
            e,
            WaiverError::WrongPredicate { branch, .. } if branch == "node/lane_saturated"
        )));
    }

    #[test]
    fn waiving_a_reachable_branch_is_an_error() {
        let config = NodeConfig::reference();
        let file = WaiverFile {
            waivers: vec![Waiver {
                branch: "node/prog_applied".to_owned(),
                predicate: "prog-port".to_owned(),
                justification: "bogus".to_owned(),
                owner: "x".to_owned(),
            }],
        };
        let errors = file.validate(&config).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(
            matches!(&errors[0], WaiverError::ReachableBranch { branch, .. } if branch == "node/prog_applied")
        );
    }

    #[test]
    fn duplicate_waivers_are_rejected() {
        let config = NodeConfig::reference();
        let mut file = WaiverFile::template(&config);
        let dup = file.waivers[0].clone();
        file.waivers.push(dup);
        let errors = file.validate(&config).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, WaiverError::DuplicateBranch { .. })));
    }

    #[test]
    fn json_round_trips() {
        let file = WaiverFile::template(&NodeConfig::reference());
        let text = file.to_json().render_pretty();
        assert!(text.contains(WAIVERS_SCHEMA));
        let parsed = WaiverFile::parse(&text).expect("parses");
        assert_eq!(parsed, file);
        assert!(WaiverFile::parse("{}").is_err());
        assert!(WaiverFile::parse("{\"schema\": \"stbus-waivers/0\", \"waivers\": []}").is_err());
    }
}
