//! Greedy set-cover minimization of a regression.
//!
//! A closure campaign (or the generic test library) accumulates far more
//! runs than the coverage goal needs: later batches re-hit most bins the
//! early ones already covered. Given each candidate run's coverage
//! footprint, the classic greedy set-cover heuristic — repeatedly take
//! the run covering the most still-uncovered bins — yields a fixed
//! regression within a ln(n) factor of the optimal size, which is the
//! paper's "minimal regression suite that still holds 100%".
//!
//! Determinism: ties are broken by the lowest candidate index, so the
//! result is a pure function of the input order (order-stable), and the
//! selection is reported in pick order — the first entry is always the
//! single highest-value run.

use std::collections::BTreeSet;

/// One candidate run and the coverage bins it hits. Bin labels are
/// opaque; the engine mixes functional bins (`f:group/bin`) and RTL
/// branch points (`l:node/branch`) into one universe so the minimized
/// set preserves both gates at once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverUnit {
    /// Display label (`test@seed`).
    pub label: String,
    /// The bins this run covers.
    pub bins: BTreeSet<String>,
}

/// The outcome of a minimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimizedSet {
    /// Indices into the candidate slice, in greedy pick order.
    pub selected: Vec<usize>,
    /// How many universe bins the selection covers.
    pub covered: usize,
    /// The universe size.
    pub universe: usize,
    /// Universe bins no candidate covers — a non-empty list means the
    /// candidate pool itself cannot reach the goal, and the functional
    /// or line gate will fail no matter the selection.
    pub uncovered: Vec<String>,
}

impl MinimizedSet {
    /// Whether the selection covers the whole universe.
    pub fn full(&self) -> bool {
        self.covered == self.universe
    }
}

/// Greedy set cover of `universe` by `units`.
///
/// Bins outside `universe` are ignored (a run may hit branches that are
/// waived, or bins of groups the goal excludes). Candidates contributing
/// nothing new are never selected; an empty universe selects nothing.
pub fn minimize(universe: &BTreeSet<String>, units: &[CoverUnit]) -> MinimizedSet {
    let mut uncovered: BTreeSet<&str> = universe.iter().map(String::as_str).collect();
    // Drop bins no unit can cover up front, so the greedy loop terminates
    // on coverage exhaustion, not on a stuck iteration.
    let reachable: BTreeSet<&str> = units
        .iter()
        .flat_map(|u| u.bins.iter().map(String::as_str))
        .filter(|b| universe.contains(*b))
        .collect();
    let unreachable: Vec<String> = uncovered
        .iter()
        .filter(|b| !reachable.contains(*b))
        .map(|b| (*b).to_owned())
        .collect();
    uncovered.retain(|b| reachable.contains(b));

    let mut selected = Vec::new();
    let mut picked = vec![false; units.len()];
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, unit) in units.iter().enumerate() {
            if picked[i] {
                continue;
            }
            let gain = unit
                .bins
                .iter()
                .filter(|b| uncovered.contains(b.as_str()))
                .count();
            // Strict `>` keeps the earliest index on ties.
            if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, i));
            }
        }
        let Some((_, index)) = best else { break };
        picked[index] = true;
        selected.push(index);
        for bin in &units[index].bins {
            uncovered.remove(bin.as_str());
        }
    }

    MinimizedSet {
        selected,
        covered: universe.len() - unreachable.len() - uncovered.len(),
        universe: universe.len(),
        uncovered: unreachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(label: &str, bins: &[&str]) -> CoverUnit {
        CoverUnit {
            label: label.to_owned(),
            bins: bins.iter().map(|b| (*b).to_owned()).collect(),
        }
    }

    fn universe(bins: &[&str]) -> BTreeSet<String> {
        bins.iter().map(|b| (*b).to_owned()).collect()
    }

    #[test]
    fn picks_the_classic_greedy_cover() {
        let u = universe(&["a", "b", "c", "d", "e"]);
        let units = vec![
            unit("small", &["a", "b"]),
            unit("big", &["b", "c", "d"]),
            unit("tail", &["e", "a"]),
        ];
        let m = minimize(&u, &units);
        assert!(m.full());
        // big (3 new) → small/tail tie at 2... tail covers {e,a} = 2,
        // small covers {a,b} = 1 after big. So big, tail, done.
        assert_eq!(m.selected, vec![1, 2]);
        assert!(m.uncovered.is_empty());
    }

    #[test]
    fn ties_break_to_the_earliest_candidate() {
        let u = universe(&["a", "b"]);
        let units = vec![unit("first", &["a", "b"]), unit("twin", &["a", "b"])];
        let m = minimize(&u, &units);
        assert_eq!(m.selected, vec![0]);
    }

    #[test]
    fn minimization_is_order_stable() {
        let u = universe(&["a", "b", "c", "d"]);
        let units = vec![
            unit("u0", &["a", "b"]),
            unit("u1", &["c"]),
            unit("u2", &["c", "d"]),
            unit("u3", &["a"]),
        ];
        let first = minimize(&u, &units);
        let second = minimize(&u, &units);
        assert_eq!(first, second);
        assert_eq!(first.selected, vec![0, 2]);
    }

    #[test]
    fn uncoverable_bins_are_reported_not_looped_over() {
        let u = universe(&["a", "ghost"]);
        let units = vec![unit("only", &["a", "outside-universe"])];
        let m = minimize(&u, &units);
        assert_eq!(m.selected, vec![0]);
        assert!(!m.full());
        assert_eq!(m.covered, 1);
        assert_eq!(m.uncovered, ["ghost"]);
    }

    #[test]
    fn empty_universe_selects_nothing() {
        let m = minimize(&BTreeSet::new(), &[unit("x", &["a"])]);
        assert!(m.selected.is_empty());
        assert!(m.full());
    }

    #[test]
    fn redundant_candidates_are_skipped() {
        let u = universe(&["a", "b"]);
        let units = vec![unit("covers-all", &["a", "b"]), unit("redundant", &["a"])];
        let m = minimize(&u, &units);
        assert_eq!(m.selected, vec![0]);
    }
}
