//! The sign-off engine: measure → minimize → gate run → verdicts.
//!
//! The engine turns a candidate pool (a recorded closure trajectory or
//! the generic test library) into the paper's sign-off evidence in three
//! deterministic phases:
//!
//! 1. **Measure** — every `(test, seed)` unit runs once on both views
//!    (no waveforms) to collect its coverage footprint: the functional
//!    bins hit on *both* views (intersection, so the minimized set is
//!    guaranteed to close coverage on each view independently) plus the
//!    RTL branch points it exercises.
//! 2. **Minimize** — greedy set cover over one mixed universe: every
//!    declared functional bin plus every *reachable* branch point. Waived
//!    (unreachable) branches are not in the universe — the waiver file,
//!    not a lucky run, is their justification.
//! 3. **Gate run** — the chosen regression replays on both views with
//!    waveform capture through [`exec::map_ordered`]; merged functional
//!    coverage, merged structural coverage and the aggregated per-port
//!    alignment feed the three gate verdicts.
//!
//! Determinism: units fan out in pick order through `map_ordered`,
//! merging happens serially on the driving thread, and
//! [`SignoffReport::signoff_json`] carries no wall-clock fields — the
//! document is byte-identical for any worker count.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use catg::{CoverageReport, TestSpec, Testbench, TestbenchOptions};
use sim_kernel::ActivityCoverage;
use stba::compare_vcd_with;
use stbus_bca::{BcaBug, BcaNode, Fidelity};
use stbus_protocol::{DutView, NodeConfig};
use stbus_rtl::{ProbePoint, RtlBug, RtlNode};
use telemetry::{Json, MetricsSnapshot, Telemetry};

use crate::justified::JustifiedCoverage;
use crate::mincover::{minimize, CoverUnit};
use crate::waiver::{WaiverError, WaiverFile};

/// Schema identifier written into `signoff.json`.
pub const SIGNOFF_SCHEMA: &str = "stbus-signoff/1";

/// The per-port alignment floor of the paper's third gate.
const ALIGNMENT_FLOOR: f64 = 0.99;

/// One candidate regression entry: a frozen spec and the seeds to run it
/// under.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Test name (reported in the chosen regression set).
    pub test: String,
    /// The runnable spec.
    pub spec: TestSpec,
    /// Seeds this spec is a candidate under.
    pub seeds: Vec<u64>,
}

/// Candidates from the generic test library (the default pool when no
/// recorded closure trajectory is given).
pub fn library_candidates(intensity: usize, seeds: &[u64]) -> Vec<Candidate> {
    catg::tests_lib::all(intensity)
        .into_iter()
        .map(|spec| Candidate {
            test: spec.name.clone(),
            spec,
            seeds: seeds.to_vec(),
        })
        .collect()
}

/// Candidates from a recorded closure trajectory
/// ([`cdg::parse_closure_replay`]): each iteration's frozen recipe under
/// its recorded batch seeds.
pub fn closure_candidates(entries: &[cdg::ReplayEntry]) -> Vec<Candidate> {
    entries
        .iter()
        .map(|e| Candidate {
            test: e.test.clone(),
            spec: e.to_spec(),
            seeds: e.seeds.clone(),
        })
        .collect()
}

/// Knobs of one sign-off run.
#[derive(Clone, Debug)]
pub struct SignoffOptions {
    /// Worker threads for both fan-out phases (0 = auto).
    pub jobs: usize,
    /// BCA fidelity (Relaxed reproduces the paper's <100% alignment).
    pub fidelity: Fidelity,
    /// RTL defects injected at elaboration (negative testing: R3 must
    /// flip the alignment gate).
    pub rtl_bugs: Vec<RtlBug>,
    /// BCA defects injected (negative testing).
    pub bca_bugs: Vec<BcaBug>,
    /// Telemetry handle (`signoff.*` spans and counters).
    pub telemetry: Telemetry,
}

impl Default for SignoffOptions {
    fn default() -> Self {
        SignoffOptions {
            jobs: 0,
            fidelity: Fidelity::Relaxed,
            rtl_bugs: Vec::new(),
            bca_bugs: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Why a sign-off run refused to start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignoffError {
    /// The waiver file failed validation; the gates were not evaluated.
    InvalidWaivers(Vec<WaiverError>),
    /// The candidate pool is empty.
    NoCandidates,
}

impl fmt::Display for SignoffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignoffError::InvalidWaivers(errors) => {
                writeln!(f, "waiver validation failed:")?;
                for e in errors {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            SignoffError::NoCandidates => write!(f, "no candidate regression entries"),
        }
    }
}

/// One run of the chosen (minimized) regression.
#[derive(Clone, Debug)]
pub struct SelectedUnit {
    /// Test name.
    pub test: String,
    /// Seed.
    pub seed: u64,
    /// Universe bins this unit was first to cover (greedy gain).
    pub gain: usize,
    /// RTL gate run passed all checks.
    pub rtl_passed: bool,
    /// BCA gate run passed all checks.
    pub bca_passed: bool,
    /// Per-port `(port, matching, total)` of this pair, when compared.
    pub alignment: Option<Vec<(String, u64, u64)>>,
}

/// One gate's verdict in display form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateVerdict {
    /// Gate name (`functional` / `justified-lines` / `alignment`).
    pub name: &'static str,
    /// Whether the gate passed.
    pub passed: bool,
    /// What failed, one line each (empty on pass).
    pub detail: Vec<String>,
}

/// The full sign-off evidence of one configuration.
#[derive(Clone, Debug)]
pub struct SignoffReport {
    /// The configuration under sign-off.
    pub config: NodeConfig,
    /// Number of waivers applied.
    pub waivers_total: usize,
    /// `(test, seed)` units in the candidate pool.
    pub candidate_units: usize,
    /// The chosen regression, in greedy pick order.
    pub selected: Vec<SelectedUnit>,
    /// Universe bins no candidate covers (minimizer residue).
    pub uncoverable: Vec<String>,
    /// Merged functional coverage of the chosen regression, RTL view.
    pub functional_rtl: Option<CoverageReport>,
    /// Merged functional coverage of the chosen regression, BCA view.
    pub functional_bca: Option<CoverageReport>,
    /// The justified-line-coverage verdict.
    pub justified: JustifiedCoverage,
    /// Campaign-aggregated per-port `(port, matching, total)`.
    pub alignment_ports: Vec<(String, u64, u64)>,
    /// Every run of the chosen regression passed all checks on both
    /// views.
    pub all_runs_passed: bool,
    /// Metrics snapshot (kernel/testbench/analyzer/signoff counters).
    pub metrics: MetricsSnapshot,
}

/// What one unit hands back from the measure phase.
struct Measured {
    /// Functional bins hit on both views (`f:` prefix) plus RTL branch
    /// points exercised (`l:` prefix).
    bins: BTreeSet<String>,
    /// Declared functional-bin labels (shape; same for every unit).
    declared: Vec<String>,
    /// RTL branch labels present in the design (shape).
    branch_names: Vec<String>,
}

/// What one unit hands back from the gate phase.
struct GateRun {
    cov_rtl: CoverageReport,
    cov_bca: CoverageReport,
    activity: ActivityCoverage,
    rtl_passed: bool,
    bca_passed: bool,
    alignment: Option<Vec<(String, u64, u64)>>,
}

#[derive(Clone)]
struct Unit {
    test: String,
    spec: TestSpec,
    seed: u64,
}

#[derive(Clone)]
struct Views {
    config: NodeConfig,
    fidelity: Fidelity,
    rtl_bugs: Vec<RtlBug>,
    bca_bugs: Vec<BcaBug>,
}

impl Views {
    fn rtl(&self) -> RtlNode {
        RtlNode::with_bugs(self.config.clone(), &self.rtl_bugs)
    }

    fn bca(&self) -> BcaNode {
        let mut bca = BcaNode::new(self.config.clone(), self.fidelity);
        for bug in &self.bca_bugs {
            bca.inject_bug(*bug);
        }
        bca
    }
}

fn functional_bin_labels(report: &CoverageReport) -> Vec<String> {
    report
        .groups
        .iter()
        .flat_map(|g| g.bins.keys().map(move |b| format!("{}/{}", g.name, b)))
        .collect()
}

fn hit_bin_labels(report: &CoverageReport) -> BTreeSet<String> {
    report
        .groups
        .iter()
        .flat_map(|g| {
            g.bins
                .iter()
                .filter(|(_, hits)| **hits > 0)
                .map(move |(b, _)| format!("{}/{}", g.name, b))
        })
        .collect()
}

/// Measure one unit: both views, no waveforms, footprint only.
fn measure_unit(unit: &Unit, views: &Views, tel: Telemetry) -> Measured {
    let bench = Testbench::new(
        views.config.clone(),
        TestbenchOptions {
            telemetry: tel.clone(),
            ..TestbenchOptions::default()
        },
    );
    let mut rtl = views.rtl();
    rtl.attach_metrics(tel.metrics());
    let rtl_result = bench.run(&mut rtl, &unit.spec, unit.seed);
    let mut bca = views.bca();
    let bca_result = bench.run(&mut bca, &unit.spec, unit.seed);

    // Intersection across views: a bin only counts toward the footprint
    // when the unit hits it on BOTH views, so covering the universe
    // closes functional coverage on each view independently.
    let rtl_hits = hit_bin_labels(&rtl_result.coverage);
    let bca_hits = hit_bin_labels(&bca_result.coverage);
    let activity = rtl.activity_coverage();
    let mut bins: BTreeSet<String> = rtl_hits
        .intersection(&bca_hits)
        .map(|b| format!("f:{b}"))
        .collect();
    bins.extend(activity.hit_branches().map(|b| format!("l:{}", b.name)));
    Measured {
        bins,
        declared: functional_bin_labels(&rtl_result.coverage),
        branch_names: activity.branches.iter().map(|b| b.name.clone()).collect(),
    }
}

/// Gate-run one unit: both views, waveform capture, STBA comparison.
fn gate_unit(unit: &Unit, views: &Views, tel: Telemetry) -> GateRun {
    let span = tel
        .span("signoff.gate_run")
        .field("test", Json::from(unit.test.clone()))
        .field("seed", Json::from(unit.seed));
    let bench = Testbench::new(
        views.config.clone(),
        TestbenchOptions {
            capture_vcd: true,
            telemetry: tel.clone(),
            ..TestbenchOptions::default()
        },
    );
    let mut rtl = views.rtl();
    rtl.attach_metrics(tel.metrics());
    let rtl_result = bench.run(&mut rtl, &unit.spec, unit.seed);
    let mut bca = views.bca();
    let bca_result = bench.run(&mut bca, &unit.spec, unit.seed);
    let rtl_passed = rtl_result.passed();
    let bca_passed = bca_result.passed();

    // As in the Figure 4 flow, the bus-accurate comparison runs once both
    // verification runs passed.
    let alignment = if rtl_passed && bca_passed {
        match (&rtl_result.vcd, &bca_result.vcd) {
            (Some(a), Some(b)) => compare_vcd_with(a, b, catg::vcd_cycle_time(), &tel)
                .ok()
                .map(|r| {
                    r.ports
                        .into_iter()
                        .map(|p| (p.port, p.matching_cycles, p.total_cycles))
                        .collect()
                }),
            _ => None,
        }
    } else {
        None
    };
    span.end([
        ("rtl_passed", Json::from(rtl_passed)),
        ("bca_passed", Json::from(bca_passed)),
    ]);
    GateRun {
        cov_rtl: rtl_result.coverage,
        cov_bca: bca_result.coverage,
        activity: rtl.activity_coverage(),
        rtl_passed,
        bca_passed,
        alignment,
    }
}

/// Runs the sign-off engine: validate waivers, measure the candidate
/// pool, minimize, replay the chosen regression with waveform capture,
/// and evaluate the three paper gates.
pub fn run_signoff(
    config: &NodeConfig,
    waivers: &WaiverFile,
    candidates: &[Candidate],
    options: &SignoffOptions,
) -> Result<SignoffReport, SignoffError> {
    waivers
        .validate(config)
        .map_err(SignoffError::InvalidWaivers)?;
    let units: Vec<Unit> = candidates
        .iter()
        .flat_map(|c| {
            c.seeds.iter().map(|&seed| Unit {
                test: c.test.clone(),
                spec: c.spec.clone(),
                seed,
            })
        })
        .collect();
    if units.is_empty() {
        return Err(SignoffError::NoCandidates);
    }

    let tel = &options.telemetry;
    let span = tel
        .span("signoff.run")
        .field("config", Json::from(config.name.clone()))
        .field("candidates", Json::from(units.len()))
        .field("waivers", Json::from(waivers.waivers.len()));
    tel.metrics()
        .counter("signoff.candidates")
        .add(units.len() as u64);

    // Phase 1: measure footprints.
    let views = Views {
        config: config.clone(),
        fidelity: options.fidelity,
        rtl_bugs: options.rtl_bugs.clone(),
        bca_bugs: options.bca_bugs.clone(),
    };
    let measure_views = views.clone();
    let measure_tel = tel.clone();
    let measured = exec::map_ordered(options.jobs, units.clone(), move |unit| {
        let m = measure_unit(&unit, &measure_views, measure_tel.buffered());
        tel_runs(&measure_tel);
        m
    });

    // The universe: every declared functional bin, plus every branch
    // point that is *reachable* in this configuration. Unreachable
    // branches are justified by waivers, not runs; branch labels the
    // probe catalogue does not know stay in the universe (conservative —
    // an unknown branch must be exercised, it cannot be waived).
    let shape = &measured[0];
    let mut universe: BTreeSet<String> = shape.declared.iter().map(|b| format!("f:{b}")).collect();
    for name in &shape.branch_names {
        let reachable = ProbePoint::from_branch_name(name).is_none_or(|p| p.reachable_in(config));
        if reachable {
            universe.insert(format!("l:{name}"));
        }
    }

    // Phase 2: greedy set cover.
    let cover_units: Vec<CoverUnit> = units
        .iter()
        .zip(&measured)
        .map(|(u, m)| CoverUnit {
            label: format!("{}@{}", u.test, u.seed),
            bins: m.bins.clone(),
        })
        .collect();
    let minimized = minimize(&universe, &cover_units);
    tel.metrics()
        .counter("signoff.selected")
        .add(minimized.selected.len() as u64);
    tel.info(
        "signoff.minimize",
        "regression minimized",
        [
            ("candidates", Json::from(units.len())),
            ("selected", Json::from(minimized.selected.len())),
            ("universe", Json::from(minimized.universe)),
            ("uncoverable", Json::from(minimized.uncovered.len())),
        ],
    );

    // The greedy gain of each pick, for the audit trail.
    let gains: Vec<usize> = {
        let mut covered: BTreeSet<&str> = BTreeSet::new();
        minimized
            .selected
            .iter()
            .map(|&i| {
                let new: Vec<&str> = cover_units[i]
                    .bins
                    .iter()
                    .map(String::as_str)
                    .filter(|b| universe.contains(*b) && !covered.contains(*b))
                    .collect();
                covered.extend(&new);
                new.len()
            })
            .collect()
    };

    // Phase 3: gate-run the chosen regression, in pick order.
    let chosen: Vec<Unit> = minimized
        .selected
        .iter()
        .map(|&i| units[i].clone())
        .collect();
    let gate_views = views.clone();
    let gate_tel = tel.clone();
    let gate_runs = exec::map_ordered(options.jobs, chosen.clone(), move |unit| {
        gate_unit(&unit, &gate_views, gate_tel.buffered())
    });

    // Serial aggregation, in pick order.
    let mut functional_rtl: Option<CoverageReport> = None;
    let mut functional_bca: Option<CoverageReport> = None;
    let mut activity: Option<ActivityCoverage> = None;
    let mut per_port: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut all_runs_passed = true;
    let mut selected = Vec::with_capacity(chosen.len());
    for ((unit, run), gain) in chosen.iter().zip(gate_runs).zip(gains) {
        merge_cov(&mut functional_rtl, &run.cov_rtl);
        merge_cov(&mut functional_bca, &run.cov_bca);
        match &mut activity {
            Some(a) => a.merge(&run.activity),
            None => activity = Some(run.activity),
        }
        for (port, m, t) in run.alignment.iter().flatten() {
            let e = per_port.entry(port.clone()).or_insert((0, 0));
            e.0 += m;
            e.1 += t;
        }
        all_runs_passed &= run.rtl_passed && run.bca_passed;
        selected.push(SelectedUnit {
            test: unit.test.clone(),
            seed: unit.seed,
            gain,
            rtl_passed: run.rtl_passed,
            bca_passed: run.bca_passed,
            alignment: run.alignment,
        });
    }
    let justified = JustifiedCoverage::new(
        activity.as_ref().expect("chosen regression ran"),
        config,
        waivers,
    );
    tel.metrics()
        .counter("signoff.unjustified")
        .add(justified.unjustified.len() as u64);
    tel.metrics()
        .counter("signoff.dead_waivers")
        .add(justified.dead_waivers.len() as u64);

    let report = SignoffReport {
        config: config.clone(),
        waivers_total: waivers.waivers.len(),
        candidate_units: units.len(),
        selected,
        uncoverable: minimized.uncovered,
        functional_rtl,
        functional_bca,
        justified,
        alignment_ports: per_port
            .into_iter()
            .map(|(port, (m, t))| (port, m, t))
            .collect(),
        all_runs_passed,
        metrics: tel.metrics().snapshot(),
    };
    span.end([
        ("passed", Json::from(report.passed())),
        ("selected", Json::from(report.selected.len())),
    ]);
    Ok(report)
}

fn tel_runs(tel: &Telemetry) {
    tel.metrics().counter("signoff.measured_units").inc();
}

fn merge_cov(acc: &mut Option<CoverageReport>, new: &CoverageReport) {
    match acc {
        Some(a) => a.merge(new),
        None => *acc = Some(new.clone()),
    }
}

fn rate(matching: u64, total: u64) -> f64 {
    if total == 0 {
        1.0
    } else {
        matching as f64 / total as f64
    }
}

impl SignoffReport {
    /// Gate 1: 100% functional coverage on both views.
    pub fn functional_gate(&self) -> GateVerdict {
        let mut detail = Vec::new();
        for (view, cov) in [("rtl", &self.functional_rtl), ("bca", &self.functional_bca)] {
            match cov {
                Some(c) => detail.extend(c.holes().into_iter().map(|h| format!("{view} hole {h}"))),
                None => detail.push(format!("{view}: no coverage collected")),
            }
        }
        GateVerdict {
            name: "functional",
            passed: detail.is_empty(),
            detail,
        }
    }

    /// Gate 2: 100% justified RTL line coverage — every miss waived, no
    /// waiver stale.
    pub fn line_gate(&self) -> GateVerdict {
        let mut detail: Vec<String> = self
            .justified
            .unjustified
            .iter()
            .map(|b| format!("unjustified branch {b}"))
            .collect();
        detail.extend(
            self.justified
                .dead_waivers
                .iter()
                .map(|d| format!("dead waiver {} ({} hits)", d.branch, d.hits)),
        );
        GateVerdict {
            name: "justified-lines",
            passed: detail.is_empty(),
            detail,
        }
    }

    /// Gate 3: ≥99% cycle alignment at every port, aggregated over the
    /// chosen regression.
    pub fn alignment_gate(&self) -> GateVerdict {
        let mut detail = Vec::new();
        if self.alignment_ports.is_empty() {
            detail.push("no compared runs (a view failed before comparison)".to_owned());
        }
        for (port, m, t) in &self.alignment_ports {
            let r = rate(*m, *t);
            if r < ALIGNMENT_FLOOR {
                detail.push(format!("port {port} aligned {:.3}% < 99%", r * 100.0));
            }
        }
        GateVerdict {
            name: "alignment",
            passed: detail.is_empty(),
            detail,
        }
    }

    /// All three gates, in paper order.
    pub fn gates(&self) -> [GateVerdict; 3] {
        [
            self.functional_gate(),
            self.line_gate(),
            self.alignment_gate(),
        ]
    }

    /// The minimum per-port alignment rate, when any run compared.
    pub fn min_alignment(&self) -> Option<f64> {
        self.alignment_ports
            .iter()
            .map(|(_, m, t)| rate(*m, *t))
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
    }

    /// The sign-off verdict: every run green and all three gates passed.
    pub fn passed(&self) -> bool {
        self.all_runs_passed && self.gates().iter().all(|g| g.passed)
    }

    /// The human-readable summary printed by `stbus-regress --signoff`.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sign-off on `{}`: {} candidate runs -> {} selected\n",
            self.config.name,
            self.candidate_units,
            self.selected.len()
        ));
        for s in &self.selected {
            out.push_str(&format!(
                "  {:<24} seed {:<4} gain {:>4}   rtl {}  bca {}\n",
                s.test,
                s.seed,
                s.gain,
                if s.rtl_passed { "pass" } else { "FAIL" },
                if s.bca_passed { "pass" } else { "FAIL" },
            ));
        }
        if !self.uncoverable.is_empty() {
            out.push_str(&format!(
                "  WARNING: {} universe bins no candidate covers\n",
                self.uncoverable.len()
            ));
        }
        let fcov = |c: &Option<CoverageReport>| {
            c.as_ref().map_or("n/a".to_owned(), |c| {
                format!("{:.2}%", c.coverage() * 100.0)
            })
        };
        out.push_str(&format!(
            "gate 1  functional coverage   {}   rtl {}  bca {}\n",
            verdict(self.functional_gate().passed),
            fcov(&self.functional_rtl),
            fcov(&self.functional_bca),
        ));
        out.push_str(&format!(
            "gate 2  justified lines       {}   raw {:.1}%  justified {:.1}%  ({} waived, {} unjustified, {} dead)\n",
            verdict(self.line_gate().passed),
            self.justified.raw_coverage() * 100.0,
            self.justified.justified_coverage() * 100.0,
            self.justified.justified.len(),
            self.justified.unjustified.len(),
            self.justified.dead_waivers.len(),
        ));
        out.push_str(&format!(
            "gate 3  port alignment        {}   min {} over {} ports\n",
            verdict(self.alignment_gate().passed),
            self.min_alignment()
                .map_or("n/a".to_owned(), |a| format!("{:.3}%", a * 100.0)),
            self.alignment_ports.len(),
        ));
        for g in self.gates() {
            for d in &g.detail {
                out.push_str(&format!("        {}: {d}\n", g.name));
            }
        }
        out.push_str(&format!(
            "runs: {}\nSIGN-OFF: {}\n",
            if self.all_runs_passed {
                "all passed"
            } else {
                "FAILURES"
            },
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }

    /// The machine-readable sign-off document ([`SIGNOFF_SCHEMA`]).
    ///
    /// Deliberately carries no wall-clock or host fields: byte-identical
    /// for any worker count.
    pub fn signoff_json(&self) -> Json {
        let gates = self.gates();
        let gate_json = |g: &GateVerdict, extra: Vec<(&str, Json)>| {
            let mut pairs = vec![
                ("passed", Json::from(g.passed)),
                (
                    "detail",
                    Json::Arr(g.detail.iter().map(|d| Json::from(d.clone())).collect()),
                ),
            ];
            pairs.extend(extra);
            Json::obj(pairs)
        };
        let cov_pct = |c: &Option<CoverageReport>| match c {
            Some(c) => Json::from(c.coverage() * 100.0),
            None => Json::Null,
        };
        Json::obj([
            ("schema", Json::from(SIGNOFF_SCHEMA)),
            (
                "config",
                Json::obj([
                    ("name", Json::from(self.config.name.clone())),
                    ("initiators", Json::from(self.config.n_initiators)),
                    ("targets", Json::from(self.config.n_targets)),
                    ("bus_bytes", Json::from(self.config.bus_bytes)),
                    ("protocol", Json::from(self.config.protocol.to_string())),
                    ("arch", Json::from(self.config.arch.to_string())),
                    (
                        "arbitration",
                        Json::from(self.config.arbitration.to_string()),
                    ),
                    ("prog_port", Json::from(self.config.prog_port)),
                ]),
            ),
            ("passed", Json::from(self.passed())),
            ("all_runs_passed", Json::from(self.all_runs_passed)),
            ("waivers_total", Json::from(self.waivers_total)),
            (
                "regression",
                Json::obj([
                    ("candidate_units", Json::from(self.candidate_units)),
                    (
                        "selected",
                        Json::Arr(
                            self.selected
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("test", Json::from(s.test.clone())),
                                        ("seed", Json::from(s.seed)),
                                        ("gain", Json::from(s.gain)),
                                        ("rtl_passed", Json::from(s.rtl_passed)),
                                        ("bca_passed", Json::from(s.bca_passed)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "uncoverable",
                        Json::Arr(
                            self.uncoverable
                                .iter()
                                .map(|b| Json::from(b.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "gates",
                Json::obj([
                    (
                        "functional",
                        gate_json(
                            &gates[0],
                            vec![
                                ("rtl_coverage_pct", cov_pct(&self.functional_rtl)),
                                ("bca_coverage_pct", cov_pct(&self.functional_bca)),
                            ],
                        ),
                    ),
                    ("justified_lines", {
                        // Same shape as the other gates: a `detail` array
                        // naming each offender right next to `passed`.
                        let mut json = self.justified.to_json();
                        if let Json::Obj(pairs) = &mut json {
                            pairs.insert(
                                1,
                                (
                                    "detail".to_owned(),
                                    Json::Arr(
                                        gates[1]
                                            .detail
                                            .iter()
                                            .map(|d| Json::from(d.clone()))
                                            .collect(),
                                    ),
                                ),
                            );
                        }
                        json
                    }),
                    (
                        "alignment",
                        gate_json(
                            &gates[2],
                            vec![
                                (
                                    "min_pct",
                                    match self.min_alignment() {
                                        Some(a) => Json::from(a * 100.0),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "ports",
                                    Json::Arr(
                                        self.alignment_ports
                                            .iter()
                                            .map(|(port, m, t)| {
                                                Json::obj([
                                                    ("port", Json::from(port.clone())),
                                                    ("matching_cycles", Json::from(*m)),
                                                    ("total_cycles", Json::from(*t)),
                                                    ("rate_pct", Json::from(rate(*m, *t) * 100.0)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ],
                        ),
                    ),
                ]),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

fn verdict(passed: bool) -> &'static str {
    if passed {
        "PASS"
    } else {
        "FAIL"
    }
}
