//! Justified line coverage — the second paper gate, as a reusable report.
//!
//! This is the logic the E6 experiment binary used to carry inline: take
//! the RTL view's structural coverage ([`sim_kernel::ActivityCoverage`]),
//! partition the never-executed branch points by the waiver file, and
//! call the gate passed only when every miss is explicitly justified
//! *and* no waiver has gone stale. A waiver whose branch was actually hit
//! ("dead waiver") fails the gate: it documents a reachability claim the
//! run just disproved, and leaving it in place would hide a real hole the
//! next time the configuration changes.

use crate::waiver::WaiverFile;
use sim_kernel::ActivityCoverage;
use stbus_protocol::NodeConfig;
use telemetry::Json;

/// A missed branch point covered by an accepted waiver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JustifiedBranch {
    /// The branch label.
    pub branch: String,
    /// The cited reachability predicate.
    pub predicate: String,
    /// The waiver's justification text.
    pub justification: String,
    /// The waiver's owner.
    pub owner: String,
}

/// A waiver whose branch was hit during the run — stale, and fatal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadWaiver {
    /// The waived branch.
    pub branch: String,
    /// How often the supposedly unreachable branch executed.
    pub hits: u64,
    /// The waiver's owner (who has to retire it).
    pub owner: String,
}

/// The justified-line-coverage verdict of one campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct JustifiedCoverage {
    /// Branch points in the design.
    pub total_branches: usize,
    /// Branch points that executed.
    pub hit_branches: usize,
    /// Missed branches with an accepted waiver.
    pub justified: Vec<JustifiedBranch>,
    /// Missed branches with no (accepted) waiver — the residue that
    /// blocks sign-off.
    pub unjustified: Vec<String>,
    /// Waivers whose branch was hit.
    pub dead_waivers: Vec<DeadWaiver>,
}

impl JustifiedCoverage {
    /// Partitions `activity`'s branch report by the waiver file.
    ///
    /// The waiver file is taken at face value here; run
    /// [`WaiverFile::validate`] first — the engine refuses to evaluate
    /// gates over an invalid file. `config` is accepted for parity with
    /// the validator's signature and future per-config scoping.
    pub fn new(activity: &ActivityCoverage, _config: &NodeConfig, waivers: &WaiverFile) -> Self {
        let mut justified = Vec::new();
        let mut unjustified = Vec::new();
        for missed in activity.missed_branches() {
            match waivers.for_branch(&missed.name) {
                Some(w) => justified.push(JustifiedBranch {
                    branch: w.branch.clone(),
                    predicate: w.predicate.clone(),
                    justification: w.justification.clone(),
                    owner: w.owner.clone(),
                }),
                None => unjustified.push(missed.name.clone()),
            }
        }
        let dead_waivers = waivers
            .waivers
            .iter()
            .filter_map(|w| {
                let hits = activity.branch(&w.branch)?.hits;
                (hits > 0).then(|| DeadWaiver {
                    branch: w.branch.clone(),
                    hits,
                    owner: w.owner.clone(),
                })
            })
            .collect();
        JustifiedCoverage {
            total_branches: activity.branches.len(),
            hit_branches: activity.hit_branches().count(),
            justified,
            unjustified,
            dead_waivers,
        }
    }

    /// Raw branch coverage, ignoring waivers, in `[0, 1]`.
    pub fn raw_coverage(&self) -> f64 {
        ratio(self.hit_branches, self.total_branches)
    }

    /// Justified coverage: hit or waived branches over all branches. The
    /// paper's gate requires this to be 1.0.
    pub fn justified_coverage(&self) -> f64 {
        ratio(
            self.hit_branches + self.justified.len(),
            self.total_branches,
        )
    }

    /// The gate verdict: every miss justified, no waiver stale.
    pub fn passed(&self) -> bool {
        self.unjustified.is_empty() && self.dead_waivers.is_empty()
    }

    /// The gate's slice of `signoff.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("passed", Json::from(self.passed())),
            ("total_branches", Json::from(self.total_branches)),
            ("hit_branches", Json::from(self.hit_branches)),
            ("raw_coverage_pct", Json::from(self.raw_coverage() * 100.0)),
            (
                "justified_coverage_pct",
                Json::from(self.justified_coverage() * 100.0),
            ),
            (
                "justified",
                Json::Arr(
                    self.justified
                        .iter()
                        .map(|j| {
                            Json::obj([
                                ("branch", Json::from(j.branch.clone())),
                                ("predicate", Json::from(j.predicate.clone())),
                                ("justification", Json::from(j.justification.clone())),
                                ("owner", Json::from(j.owner.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "unjustified",
                Json::Arr(
                    self.unjustified
                        .iter()
                        .map(|b| Json::from(b.clone()))
                        .collect(),
                ),
            ),
            (
                "dead_waivers",
                Json::Arr(
                    self.dead_waivers
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("branch", Json::from(d.branch.clone())),
                                ("hits", Json::from(d.hits)),
                                ("owner", Json::from(d.owner.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn ratio(hit: usize, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::{ActivityCoverage, BranchActivity};

    fn activity(pairs: &[(&str, u64)]) -> ActivityCoverage {
        ActivityCoverage {
            processes: Vec::new(),
            branches: pairs
                .iter()
                .map(|(name, hits)| BranchActivity {
                    name: (*name).to_owned(),
                    hits: *hits,
                })
                .collect(),
        }
    }

    fn waiver(branch: &str) -> crate::Waiver {
        crate::Waiver {
            branch: branch.to_owned(),
            predicate: "p".to_owned(),
            justification: "j".to_owned(),
            owner: "o".to_owned(),
        }
    }

    #[test]
    fn partitions_missed_branches_by_waiver() {
        let act = activity(&[("node/a", 5), ("node/b", 0), ("node/c", 0)]);
        let waivers = WaiverFile {
            waivers: vec![waiver("node/b")],
        };
        let jc = JustifiedCoverage::new(&act, &NodeConfig::reference(), &waivers);
        assert_eq!(jc.hit_branches, 1);
        assert_eq!(jc.justified.len(), 1);
        assert_eq!(jc.unjustified, ["node/c"]);
        assert!(jc.dead_waivers.is_empty());
        assert!(!jc.passed());
        assert!((jc.raw_coverage() - 1.0 / 3.0).abs() < 1e-12);
        assert!((jc.justified_coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_justification_passes_and_hits_kill_waivers() {
        let act = activity(&[("node/a", 5), ("node/b", 0)]);
        let good = WaiverFile {
            waivers: vec![waiver("node/b")],
        };
        let jc = JustifiedCoverage::new(&act, &NodeConfig::reference(), &good);
        assert!(jc.passed());
        assert!((jc.justified_coverage() - 1.0).abs() < 1e-12);

        // The same file over a run that *did* hit node/b: dead waiver.
        let act = activity(&[("node/a", 5), ("node/b", 2)]);
        let jc = JustifiedCoverage::new(&act, &NodeConfig::reference(), &good);
        assert!(!jc.passed());
        assert_eq!(jc.dead_waivers.len(), 1);
        assert_eq!(jc.dead_waivers[0].branch, "node/b");
        assert_eq!(jc.dead_waivers[0].hits, 2);
    }

    #[test]
    fn json_names_the_offending_branches() {
        let act = activity(&[("node/a", 0)]);
        let jc = JustifiedCoverage::new(&act, &NodeConfig::reference(), &WaiverFile::default());
        let text = jc.to_json().render_pretty();
        assert!(text.contains("node/a"));
        assert!(text.contains("\"passed\": false"));
    }
}
