//! The sign-off gate engine.
//!
//! The paper's sign-off criterion is threefold: 100% functional coverage
//! on **both** views, 100% *justified* RTL line coverage, and ≥99%
//! per-port cycle alignment between the views. Before this crate, only
//! the functional and alignment halves were machine-checked (the
//! regression runner's `signed_off()` predicate); the "justified" half
//! lived as ad-hoc logic inside an experiment binary, and nothing turned
//! a coverage-closure trajectory into the *minimal* fixed regression the
//! paper's methodology promises. This crate makes the whole criterion one
//! auditable artifact:
//!
//! * [`WaiverFile`] — a versioned waiver format ([`WAIVERS_SCHEMA`]):
//!   every never-executed RTL branch point must carry an explicit waiver
//!   citing the structural-reachability predicate
//!   ([`stbus_rtl::ProbePoint::predicate_id`]) that makes it dead code in
//!   the configuration under sign-off, plus a justification text and an
//!   owner. Unknown branches and predicate mismatches are validation
//!   errors; waivers whose branch *was* hit during the run are flagged as
//!   dead waivers and fail the gate — stale justifications are as
//!   dangerous as missing ones.
//! * [`JustifiedCoverage`] — the reusable justified-line-coverage report
//!   (hoisted out of the E6 experiment binary) partitioning missed
//!   branches into waived and unjustified residue on top of
//!   [`sim_kernel::ActivityCoverage`].
//! * [`minimize`] — a greedy set-cover minimizer over per-run coverage
//!   footprints; fed from a recorded `closure.json` trajectory (via
//!   [`cdg::parse_closure_replay`]) or the built-in test library, it
//!   emits the smallest replay set that still covers every functional bin
//!   *and* every reachable branch point.
//! * [`run_signoff`] — the engine: measure candidate footprints, minimize,
//!   re-run the chosen regression on both views with waveform capture,
//!   and evaluate the three gates into a [`SignoffReport`] whose
//!   [`SignoffReport::signoff_json`] form ([`SIGNOFF_SCHEMA`]) carries no
//!   wall-clock fields and is byte-identical for any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod justified;
mod mincover;
mod waiver;

pub use engine::{
    closure_candidates, library_candidates, run_signoff, Candidate, GateVerdict, SelectedUnit,
    SignoffError, SignoffOptions, SignoffReport, SIGNOFF_SCHEMA,
};
pub use justified::{DeadWaiver, JustifiedBranch, JustifiedCoverage};
pub use mincover::{minimize, CoverUnit, MinimizedSet};
pub use waiver::{Waiver, WaiverError, WaiverFile, WAIVERS_SCHEMA};
