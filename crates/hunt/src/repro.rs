//! The minimal reproducer artifact (`repro.json`).
//!
//! A [`Repro`] is the hunt's deliverable: everything needed to replay
//! one shrunk divergence without the fleet — the reduced configuration
//! (embedded as the regression tool's text format, so it is readable and
//! round-trips through the audited codec), the reduced recipe, the
//! testbench seed, the injected catalogue labels (empty for a genuine
//! cross-view find), the detector that fired, and the shrink trajectory
//! that got there. Schema [`REPRO_SCHEMA`].

use crate::probe::{run_probe, Finding, Injections};
use cdg::Recipe;
use stbus_protocol::config_file::{parse_config, render_config};
use stbus_protocol::NodeConfig;
use telemetry::{Json, Telemetry};

/// Schema tag written into every `repro.json`.
pub const REPRO_SCHEMA: &str = "stbus-repro/1";

/// One minimal reproducer.
#[derive(Clone, Debug)]
pub struct Repro {
    /// The shrunk node configuration.
    pub config: NodeConfig,
    /// The shrunk stimulus recipe.
    pub recipe: Recipe,
    /// The testbench seed (held fixed through the shrink).
    pub seed: u64,
    /// The campaign that found it.
    pub campaign_seed: u64,
    /// The probe index within that campaign.
    pub probe_index: u64,
    /// Catalogue labels of seeded defects (empty for a real find).
    pub injected: Vec<String>,
    /// Display form of the detector that fired (e.g. `"checker R-TID"`).
    pub detector: String,
    /// The detector's report column — the class the shrinker preserved.
    pub detector_column: String,
    /// STBA minimum alignment rate, when the detector was the
    /// cross-view comparison.
    pub alignment_rate: Option<f64>,
    /// Accepted shrink steps, in application order.
    pub shrink_steps: Vec<String>,
    /// The command that replays this reproducer.
    pub replay: String,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Repro {
    /// A content-addressed identifier: hashes the replay-relevant fields
    /// (configuration text, recipe, seed, injections, detector class) so
    /// re-promoting the same reproducer lands on the same catalogue
    /// entry instead of a duplicate.
    pub fn id(&self) -> String {
        let key = format!(
            "{}|{}|{}|{}|{}",
            render_config(&self.config),
            self.recipe.to_json().render(),
            self.seed,
            self.injected.join(","),
            self.detector_column,
        );
        format!("{:016x}", fnv64(key.as_bytes()))
    }

    /// The machine-readable form; stable field order, no wall-clock
    /// content, byte-identical for a given reproducer.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(REPRO_SCHEMA)),
            ("id", Json::str(self.id())),
            (
                "view_pair",
                Json::Arr(vec![Json::str("rtl"), Json::str("bca")]),
            ),
            ("detector", Json::str(self.detector.clone())),
            ("detector_column", Json::str(self.detector_column.clone())),
            (
                "alignment_rate_pct",
                Json::from(self.alignment_rate.map(|r| r * 100.0)),
            ),
            (
                "injected",
                Json::Arr(self.injected.iter().map(|s| Json::str(s.as_str())).collect()),
            ),
            ("campaign_seed", Json::from(self.campaign_seed)),
            ("probe_index", Json::from(self.probe_index)),
            ("seed", Json::from(self.seed)),
            (
                "shrink_steps",
                Json::Arr(
                    self.shrink_steps
                        .iter()
                        .map(|s| Json::str(s.as_str()))
                        .collect(),
                ),
            ),
            ("config", Json::str(render_config(&self.config))),
            ("recipe", self.recipe.to_json()),
            ("replay", Json::str(self.replay.clone())),
        ])
    }

    /// Parses a `repro.json`; errors name the offending field.
    pub fn from_json(json: &Json) -> Result<Repro, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("repro: missing schema")?;
        if schema != REPRO_SCHEMA {
            return Err(format!(
                "repro: schema {schema:?} (this tool reads {REPRO_SCHEMA:?})"
            ));
        }
        let config_text = json
            .get("config")
            .and_then(Json::as_str)
            .ok_or("repro: missing config text")?;
        let config = parse_config(config_text).map_err(|e| format!("repro: config: {e}"))?;
        let recipe = Recipe::from_json(json.get("recipe").ok_or("repro: missing recipe")?)
            .map_err(|e| format!("repro: recipe: {e}"))?;
        let field_u64 = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("repro: missing {key}"))
        };
        let field_str = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("repro: missing {key}"))
        };
        let str_arr = |key: &str| -> Result<Vec<String>, String> {
            json.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("repro: missing {key}"))?
                .iter()
                .map(|j| {
                    j.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("repro: non-string entry in {key}"))
                })
                .collect()
        };
        let injected = str_arr("injected")?;
        // Validate the labels up front so a corrupt file fails at load,
        // not at replay.
        Injections::from_labels(&injected).map_err(|e| format!("repro: {e}"))?;
        Ok(Repro {
            config,
            recipe,
            seed: field_u64("seed")?,
            campaign_seed: field_u64("campaign_seed")?,
            probe_index: field_u64("probe_index")?,
            injected,
            detector: field_str("detector")?,
            detector_column: field_str("detector_column")?,
            alignment_rate: json
                .get("alignment_rate_pct")
                .and_then(Json::as_f64)
                .map(|p| p / 100.0),
            shrink_steps: str_arr("shrink_steps")?,
            replay: field_str("replay")?,
        })
    }

    /// Re-runs the recorded probe exactly: same configuration, recipe,
    /// seed and injections. Returns the finding, or `None` when the
    /// divergence no longer reproduces (e.g. the defect was fixed).
    pub fn replay(&self, telemetry: &Telemetry) -> Result<Option<Finding>, String> {
        let inject = Injections::from_labels(&self.injected)?;
        Ok(run_probe(
            &self.config,
            &self.recipe,
            self.seed,
            &inject,
            telemetry,
        ))
    }

    /// True when a replayed finding matches the recorded detector class.
    pub fn matches(&self, finding: &Finding) -> bool {
        finding.detector.column() == self.detector_column
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    fn sample() -> Repro {
        let config = NodeConfig::builder("hunt_min")
            .initiators(2)
            .targets(2)
            .build()
            .unwrap();
        let recipe = Recipe::random(&config, &mut StdRng::seed_from_u64(5));
        Repro {
            config,
            recipe,
            seed: 411,
            campaign_seed: 1,
            probe_index: 7,
            injected: vec!["R2".to_owned()],
            detector: "checker R-TID".to_owned(),
            detector_column: "checker".to_owned(),
            alignment_rate: None,
            shrink_steps: vec!["config:one-initiator".to_owned()],
            replay: "stbus-regress --hunt-replay repro.json".to_owned(),
        }
    }

    #[test]
    fn repro_round_trips_through_json() {
        let repro = sample();
        let json = repro.to_json();
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(REPRO_SCHEMA));
        let parsed = Repro::from_json(&json).unwrap();
        assert_eq!(parsed.config, repro.config);
        assert_eq!(parsed.recipe, repro.recipe);
        assert_eq!(parsed.seed, repro.seed);
        assert_eq!(parsed.injected, repro.injected);
        assert_eq!(parsed.detector, repro.detector);
        assert_eq!(parsed.detector_column, repro.detector_column);
        assert_eq!(parsed.shrink_steps, repro.shrink_steps);
        assert_eq!(parsed.id(), repro.id());
        // Round-tripping again is byte-stable.
        assert_eq!(parsed.to_json().render_pretty(), json.render_pretty());
    }

    #[test]
    fn corrupt_repro_files_fail_with_named_fields() {
        let json = sample().to_json();
        let missing = Json::obj([("schema", Json::str(REPRO_SCHEMA))]);
        assert!(Repro::from_json(&missing).unwrap_err().contains("config"));
        let Json::Obj(mut pairs) = json else {
            unreachable!()
        };
        for (k, v) in &mut pairs {
            if k == "injected" {
                *v = Json::Arr(vec![Json::str("Z9")]);
            }
        }
        let err = Repro::from_json(&Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("Z9"), "{err}");
    }
}
