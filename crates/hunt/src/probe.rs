//! One hunt probe: a random `(configuration, recipe, seed)` triple and
//! the differential run that decides whether it diverges.
//!
//! A probe reproduces exactly from `(campaign_seed, index)`: the pair is
//! hashed into a private RNG stream, and the configuration, the recipe
//! and the testbench seed are all drawn from that one stream in a fixed
//! order. Nothing else feeds the draw, so a `repro.json` needs only the
//! frozen artifacts — the replay never re-derives them.
//!
//! The differential run itself — build the RTL/BCA pair, arm the
//! checkers, classify failures differentially, fall back to the STBA
//! cycle comparison — lives in [`mutation::differential`], shared with
//! the promoted-reproducer catalogue so a promoted entry replays under
//! *exactly* the judge that found it.

use cdg::Recipe;
use rand::rngs::StdRng;
use rand::{RngCore as _, SeedableRng as _};
use stbus_protocol::NodeConfig;
use telemetry::Telemetry;

pub use mutation::differential::{DiffFinding as Finding, Injections};

/// One drawn probe, fully determined by `(campaign_seed, index)`.
#[derive(Clone, Debug)]
pub struct Probe {
    /// Position in the campaign (the second half of the draw key).
    pub index: u64,
    /// The drawn node configuration.
    pub config: NodeConfig,
    /// The drawn stimulus recipe (already normalized for `config`).
    pub recipe: Recipe,
    /// The drawn testbench seed.
    pub seed: u64,
}

/// SplitMix64 finalizer — the same mixer the compat RNG seeds through,
/// reused here to spread `(campaign_seed, index)` into independent
/// per-probe streams.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws probe `index` of the campaign keyed by `campaign_seed`.
pub fn draw_probe(campaign_seed: u64, index: u64) -> Probe {
    let mut rng = StdRng::seed_from_u64(splitmix(campaign_seed) ^ splitmix(!index));
    let config = catg::tests_lib::strategy::draw_config(&mut rng);
    let recipe = Recipe::random(&config, &mut rng);
    // Small seeds keep replay commands and reports human-readable.
    let seed = rng.next_u64() % 100_000;
    Probe {
        index,
        config,
        recipe,
        seed,
    }
}

/// Runs one differential probe: the recipe's spec on the RTL view and
/// the exact-fidelity BCA view with identical stimulus, protocol
/// checkers armed on both, then the cross-view STBA cycle comparison.
/// Returns `None` when the pair is clean and aligned.
pub fn run_probe(
    config: &NodeConfig,
    recipe: &Recipe,
    seed: u64,
    inject: &Injections,
    telemetry: &Telemetry,
) -> Option<Finding> {
    let spec = recipe.to_spec("hunt_probe");
    mutation::run_differential(config, &spec, seed, inject, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_draws_are_deterministic_and_index_independent() {
        let a = draw_probe(1, 3);
        let b = draw_probe(1, 3);
        assert_eq!(a.config, b.config);
        assert_eq!(a.recipe, b.recipe);
        assert_eq!(a.seed, b.seed);
        let c = draw_probe(1, 4);
        assert!(c.config != a.config || c.recipe != a.recipe || c.seed != a.seed);
        let d = draw_probe(2, 3);
        assert!(d.config != a.config || d.recipe != a.recipe || d.seed != a.seed);
    }
}
