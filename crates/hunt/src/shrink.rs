//! The delta-debugging shrinker: reduce a divergent probe to the
//! smallest `(configuration, recipe)` that still fires the same class of
//! detector.
//!
//! Classic ddmin works on a flat list of input chunks; a hunt probe has
//! *two* coupled inputs — the node configuration and the stimulus recipe
//! — and removing hardware (an initiator port, crossbar lanes, the
//! programming port) invalidates parts of the recipe. So the shrinker
//! interleaves two deterministic candidate generators: configuration
//! reductions (this module), each followed by [`cdg::clamp_recipe`] to
//! re-fit the recipe to the smaller node, and recipe reductions
//! ([`cdg::recipe_reductions`]). It greedily accepts the first candidate
//! that re-validates — the same detector *column* must fire, so a
//! checker divergence cannot silently degrade into a weaker alignment
//! drop — and restarts from the top, until a full pass proposes nothing
//! that survives. The candidate order is fixed and every accepted step
//! is recorded, so a shrink trajectory replays byte-for-byte.

use crate::probe::{run_probe, Finding, Injections};
use cdg::Recipe;
use stbus_protocol::{Architecture, NodeConfig, ProtocolType};
use telemetry::{Json, Telemetry};

/// Rebuilds `config` with the builder after `edit` adjusts the knobs;
/// `None` when the edited combination is illegal (the builder rejects
/// it), which simply skips that candidate.
fn rebuild(config: &NodeConfig, edit: impl FnOnce(&mut Knobs)) -> Option<NodeConfig> {
    let mut k = Knobs {
        initiators: config.n_initiators,
        targets: config.n_targets,
        bus_bytes: config.bus_bytes,
        protocol: config.protocol,
        arch: config.arch,
        pipe_depth: config.pipe_depth,
        prog_port: config.prog_port,
        max_outstanding: config.max_outstanding,
    };
    edit(&mut k);
    NodeConfig::builder(&config.name)
        .initiators(k.initiators)
        .targets(k.targets)
        .bus_bytes(k.bus_bytes)
        .protocol(k.protocol)
        .architecture(k.arch)
        .arbitration(config.arbitration)
        .pipe_depth(k.pipe_depth)
        .prog_port(k.prog_port)
        .max_outstanding(k.max_outstanding)
        .build()
        .ok()
}

struct Knobs {
    initiators: usize,
    targets: usize,
    bus_bytes: usize,
    protocol: ProtocolType,
    arch: Architecture,
    pipe_depth: usize,
    prog_port: bool,
    max_outstanding: usize,
}

/// Proposes every applicable one-step configuration reduction, largest
/// jumps first (straight to one port, then halving, then decrement), so
/// a divergence that needs no contention at all collapses in two steps
/// instead of a decrement ladder.
pub fn config_reductions(config: &NodeConfig) -> Vec<(&'static str, NodeConfig)> {
    let mut out: Vec<(&'static str, NodeConfig)> = Vec::new();
    let mut propose = |label: &'static str, candidate: Option<NodeConfig>| {
        if let Some(candidate) = candidate {
            if candidate != *config {
                out.push((label, candidate));
            }
        }
    };
    let ni = config.n_initiators;
    if ni > 1 {
        propose("one-initiator", rebuild(config, |k| k.initiators = 1));
    }
    if ni > 3 {
        propose("halve-initiators", rebuild(config, |k| k.initiators = ni / 2));
    }
    if ni > 2 {
        propose("drop-initiator", rebuild(config, |k| k.initiators = ni - 1));
    }
    let nt = config.n_targets;
    if nt > 1 {
        propose("one-target", rebuild(config, |k| k.targets = 1));
    }
    if nt > 3 {
        propose("halve-targets", rebuild(config, |k| k.targets = nt / 2));
    }
    if nt > 2 {
        propose("drop-target", rebuild(config, |k| k.targets = nt - 1));
    }
    if config.bus_bytes > 4 {
        propose("bus-to-4", rebuild(config, |k| k.bus_bytes = 4));
    }
    if config.bus_bytes > 1 {
        propose(
            "halve-bus",
            rebuild(config, |k| k.bus_bytes = config.bus_bytes / 2),
        );
    }
    if config.arch != Architecture::SharedBus {
        propose(
            "shared-bus",
            rebuild(config, |k| k.arch = Architecture::SharedBus),
        );
    }
    if config.pipe_depth > 0 {
        propose("no-pipeline", rebuild(config, |k| k.pipe_depth = 0));
    }
    if config.prog_port {
        propose("no-prog-port", rebuild(config, |k| k.prog_port = false));
    }
    if config.max_outstanding > 1 {
        propose(
            "single-outstanding",
            rebuild(config, |k| k.max_outstanding = 1),
        );
    }
    // Last resort: collapsing to the blocking protocol removes splits,
    // chunks and out-of-order delivery in one step — kept only when the
    // divergence genuinely never needed them.
    if config.protocol != ProtocolType::Type1 {
        propose(
            "protocol-type1",
            rebuild(config, |k| k.protocol = ProtocolType::Type1),
        );
    }
    out
}

/// A finished shrink: the minimal surviving pair, the accepted steps in
/// order (`"config:one-target"`, `"recipe:single-phase"`, …), the number
/// of candidate re-validations spent, and the finding the minimal pair
/// still produces.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The reduced configuration.
    pub config: NodeConfig,
    /// The reduced recipe (normalized for `config`).
    pub recipe: Recipe,
    /// Accepted reduction steps, in application order.
    pub steps: Vec<String>,
    /// Candidate re-validation runs spent (accepted + rejected).
    pub evaluations: usize,
    /// The finding the minimal pair produces.
    pub finding: Finding,
}

/// Greedily shrinks `(config, recipe)` while `detector_column` keeps
/// firing, spending at most `budget` candidate re-validations. The
/// starting pair must itself fire (the caller just observed it);
/// `seed` and `inject` are held fixed throughout.
pub fn shrink(
    config: &NodeConfig,
    recipe: &Recipe,
    seed: u64,
    inject: &Injections,
    detector_column: &str,
    budget: usize,
    telemetry: &Telemetry,
) -> ShrinkResult {
    let tel = telemetry.buffered();
    let span = tel
        .span("hunt.shrink")
        .field("detector", Json::from(detector_column))
        .field("seed", Json::from(seed));
    let mut config = config.clone();
    let mut recipe = recipe.clone();
    let mut steps: Vec<String> = Vec::new();
    let mut evaluations = 0usize;
    let mut finding = None;

    let still_fires = |config: &NodeConfig, recipe: &Recipe, tel: &Telemetry| {
        run_probe(config, recipe, seed, inject, tel)
            .filter(|f| f.detector.column() == detector_column)
    };

    'fixpoint: loop {
        for (label, cand_config) in config_reductions(&config) {
            if evaluations >= budget {
                break 'fixpoint;
            }
            let mut cand_recipe = recipe.clone();
            cdg::clamp_recipe(&mut cand_recipe, &cand_config);
            evaluations += 1;
            if let Some(f) = still_fires(&cand_config, &cand_recipe, &tel) {
                steps.push(format!("config:{label}"));
                config = cand_config;
                recipe = cand_recipe;
                finding = Some(f);
                continue 'fixpoint;
            }
        }
        for (label, cand_recipe) in cdg::recipe_reductions(&recipe, &config) {
            if evaluations >= budget {
                break 'fixpoint;
            }
            evaluations += 1;
            if let Some(f) = still_fires(&config, &cand_recipe, &tel) {
                steps.push(format!("recipe:{label}"));
                recipe = cand_recipe;
                finding = Some(f);
                continue 'fixpoint;
            }
        }
        break;
    }
    // The caller observed the starting pair fire; if no reduction was
    // ever accepted, re-validate once so the result carries a finding.
    let finding = finding
        .or_else(|| still_fires(&config, &recipe, &tel))
        .expect("the unreduced pair fired when the caller observed it");
    span.end([
        ("steps", Json::from(steps.len() as u64)),
        ("evaluations", Json::from(evaluations as u64)),
    ]);
    ShrinkResult {
        config,
        recipe,
        steps,
        evaluations,
        finding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_reductions_are_deterministic_and_legal() {
        let config = NodeConfig::builder("big")
            .initiators(4)
            .targets(4)
            .bus_bytes(16)
            .protocol(ProtocolType::Type3)
            .architecture(Architecture::PartialCrossbar { lanes: 2 })
            .pipe_depth(2)
            .prog_port(true)
            .max_outstanding(4)
            .build()
            .unwrap();
        let a = config_reductions(&config);
        let b = config_reductions(&config);
        assert_eq!(
            a.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            b.iter().map(|(l, _)| *l).collect::<Vec<_>>()
        );
        assert!(a.len() >= 10, "big config offers many reductions: {a:?}");
        for (label, candidate) in &a {
            assert_ne!(candidate, &config, "{label} proposed a no-op");
        }
    }

    #[test]
    fn minimal_config_offers_no_reductions() {
        let config = NodeConfig::builder("min")
            .initiators(1)
            .targets(1)
            .bus_bytes(1)
            .protocol(ProtocolType::Type1)
            .max_outstanding(1)
            .build()
            .unwrap();
        assert!(config_reductions(&config).is_empty());
    }
}
