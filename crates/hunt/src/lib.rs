//! The differential bug-hunt fleet.
//!
//! The paper's environment is *reactive*: the twelve generic tests, the
//! random suite and the qualification campaign all run fixed stimulus on
//! fixed configurations. This crate adds the proactive half — the
//! standing fleet that spends a fixed probe budget drawing random
//! `(configuration, recipe, seed)` triples from the same audited legal
//! space the property tests sample ([`catg::tests_lib::strategy`]),
//! running each triple differentially across the RTL and exact-fidelity
//! BCA views with the protocol checkers armed and the STBA cycle
//! comparison as the backstop, and — on any divergence — delta-debugging
//! the probe down to a minimal reproducer ([`Repro`], `repro.json`).
//!
//! The loop closes through promotion: a shrunk reproducer dropped into
//! the `hunts/` catalogue becomes a pinned entry the qualification
//! campaign replays forever after (`mutation::promoted`), so every bug
//! the fleet ever found stays found.
//!
//! Everything is deterministic. A campaign is fully keyed by
//! `(campaign_seed, budget)`: probes are drawn from hashed per-index RNG
//! streams, the fan-out preserves probe order for any worker count, and
//! shrinking is serial and greedy with a fixed candidate order — so
//! `hunt.json` is byte-identical for `--jobs 1` and `--jobs 8`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod probe;
mod repro;
mod shrink;

pub use probe::{draw_probe, run_probe, Finding, Injections, Probe};
pub use repro::{Repro, REPRO_SCHEMA};
pub use shrink::{config_reductions, shrink, ShrinkResult};

use std::time::Instant;
use telemetry::{Json, Telemetry};

/// Schema tag written into every `hunt.json`.
pub const HUNT_SCHEMA: &str = "stbus-hunt/1";

/// Campaign parameters.
#[derive(Clone)]
pub struct HuntOptions {
    /// Number of probes to draw and run.
    pub budget: usize,
    /// Campaign key; with `budget` it fully determines the report.
    pub campaign_seed: u64,
    /// Defects seeded into the views (meta-testing); empty = real hunt.
    pub inject: Injections,
    /// At most this many divergences are shrunk (in probe order); the
    /// rest are still reported as divergent.
    pub max_shrinks: usize,
    /// Candidate re-validations each shrink may spend.
    pub shrink_budget: usize,
    /// Worker threads; `0` auto-detects. The report is identical for
    /// any value.
    pub jobs: usize,
    /// Telemetry handle (`hunt.*` spans and counters).
    pub telemetry: Telemetry,
}

impl Default for HuntOptions {
    fn default() -> Self {
        HuntOptions {
            budget: 24,
            campaign_seed: 1,
            inject: Injections::default(),
            max_shrinks: 4,
            shrink_budget: 160,
            jobs: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One probe row of the report.
#[derive(Clone, Debug)]
pub struct ProbeRecord {
    /// Probe index within the campaign.
    pub index: u64,
    /// Display summary of the drawn configuration.
    pub config: String,
    /// The drawn testbench seed.
    pub seed: u64,
    /// The detector that fired, if the probe diverged.
    pub detector: Option<String>,
    /// STBA minimum alignment rate, when the comparison decided.
    pub alignment_rate: Option<f64>,
}

/// A finished campaign.
#[derive(Clone, Debug)]
pub struct HuntReport {
    /// The campaign key.
    pub campaign_seed: u64,
    /// The probe budget that was run.
    pub budget: usize,
    /// Labels of seeded defects (empty for a real hunt).
    pub injected: Vec<String>,
    /// Every probe, in index order.
    pub probes: Vec<ProbeRecord>,
    /// Minimal reproducers for the first `max_shrinks` divergences.
    pub repros: Vec<Repro>,
    /// Total shrink re-validations spent.
    pub shrink_evaluations: usize,
    /// Wall-clock; `None` after [`HuntReport::strip_timings`].
    pub elapsed_ms: Option<u64>,
}

impl HuntReport {
    /// Number of divergent probes (shrunk or not).
    pub fn divergences(&self) -> usize {
        self.probes.iter().filter(|p| p.detector.is_some()).count()
    }

    /// Removes wall-clock content so the report is byte-identical across
    /// machines and worker counts (`--deterministic`).
    pub fn strip_timings(&mut self) {
        self.elapsed_ms = None;
    }

    /// The machine-readable `hunt.json` form ([`HUNT_SCHEMA`]).
    pub fn hunt_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(HUNT_SCHEMA)),
            ("campaign_seed", Json::from(self.campaign_seed)),
            ("budget", Json::from(self.budget)),
            (
                "injected",
                Json::Arr(self.injected.iter().map(|s| Json::str(s.as_str())).collect()),
            ),
            ("divergences", Json::from(self.divergences())),
            (
                "probes",
                Json::Arr(
                    self.probes
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("index", Json::from(p.index)),
                                ("config", Json::str(p.config.as_str())),
                                ("seed", Json::from(p.seed)),
                                ("detector", Json::from(p.detector.clone())),
                                (
                                    "alignment_rate_pct",
                                    Json::from(p.alignment_rate.map(|r| r * 100.0)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "repros",
                Json::Arr(self.repros.iter().map(Repro::to_json).collect()),
            ),
            ("shrink_evaluations", Json::from(self.shrink_evaluations)),
            ("elapsed_ms", Json::from(self.elapsed_ms)),
        ])
    }

    /// A terminal summary table: one row per divergence.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "hunt: {} probes, seed {}, {} divergent\n",
            self.budget,
            self.campaign_seed,
            self.divergences()
        ));
        for p in self.probes.iter().filter(|p| p.detector.is_some()) {
            out.push_str(&format!(
                "  probe {:>4}  seed {:>6}  {}  [{}]\n",
                p.index,
                p.seed,
                p.detector.as_deref().unwrap_or("-"),
                p.config,
            ));
        }
        for r in &self.repros {
            out.push_str(&format!(
                "  repro {}: {} via {} step(s) -> {} initiators, {} targets, {} txns\n",
                r.id(),
                r.detector,
                r.shrink_steps.len(),
                r.config.n_initiators,
                r.config.n_targets,
                r.recipe
                    .models
                    .iter()
                    .map(|m| m.n_transactions)
                    .sum::<usize>(),
            ));
        }
        out
    }
}

/// Runs one budgeted hunt campaign: draw, fan out, classify, shrink.
pub fn run_hunt(options: &HuntOptions) -> HuntReport {
    let tel = &options.telemetry;
    let started = Instant::now();
    let campaign_span = tel
        .span("hunt.campaign")
        .field("budget", Json::from(options.budget))
        .field("campaign_seed", Json::from(options.campaign_seed));

    let campaign_seed = options.campaign_seed;
    let inject = options.inject.clone();
    let worker_tel = tel.clone();
    let outcomes = exec::map_ordered(
        options.jobs,
        (0..options.budget as u64).collect::<Vec<u64>>(),
        move |index| {
            let probe = draw_probe(campaign_seed, index);
            let finding = run_probe(
                &probe.config,
                &probe.recipe,
                probe.seed,
                &inject,
                &worker_tel,
            );
            (probe, finding)
        },
    );

    let mut probes = Vec::with_capacity(outcomes.len());
    let mut repros = Vec::new();
    let mut shrink_evaluations = 0usize;
    for (probe, finding) in &outcomes {
        probes.push(ProbeRecord {
            index: probe.index,
            config: probe.config.to_string(),
            seed: probe.seed,
            detector: finding.as_ref().map(|f| f.detector.to_string()),
            alignment_rate: finding.as_ref().and_then(|f| f.alignment_rate),
        });
    }
    // Shrinking is serial and in probe order: trajectories re-validate
    // against live simulations, and a fixed order is what makes the
    // report independent of the worker count.
    for (probe, finding) in outcomes
        .iter()
        .filter_map(|(p, f)| f.as_ref().map(|f| (p, f)))
        .take(options.max_shrinks)
    {
        let column = finding.detector.column();
        let result = shrink::shrink(
            &probe.config,
            &probe.recipe,
            probe.seed,
            &options.inject,
            column,
            options.shrink_budget,
            tel,
        );
        shrink_evaluations += result.evaluations;
        // The file name matches what the CLI writes under `--out`; kept
        // relative so `hunt.json` stays byte-identical across out dirs.
        let replay = format!("stbus-regress --hunt-replay repro_{}.json", repros.len());
        repros.push(Repro {
            config: result.config,
            recipe: result.recipe,
            seed: probe.seed,
            campaign_seed,
            probe_index: probe.index,
            injected: options.inject.labels(),
            detector: result.finding.detector.to_string(),
            detector_column: column.to_owned(),
            alignment_rate: result.finding.alignment_rate,
            shrink_steps: result.steps,
            replay,
        });
    }

    let report = HuntReport {
        campaign_seed,
        budget: options.budget,
        injected: options.inject.labels(),
        probes,
        repros,
        shrink_evaluations,
        elapsed_ms: Some(started.elapsed().as_millis() as u64),
    };
    campaign_span.end([
        ("divergences", Json::from(report.divergences())),
        ("repros", Json::from(report.repros.len())),
    ]);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_rtl::RtlBug;

    fn seeded_options(jobs: usize) -> HuntOptions {
        HuntOptions {
            // Campaign seed 1 first diverges at probe 6; a budget of 8
            // keeps the meta-test fast while covering it.
            budget: 8,
            campaign_seed: 1,
            inject: Injections {
                rtl: vec![RtlBug::MisroutedHighTarget],
                bca: vec![],
            },
            max_shrinks: 1,
            shrink_budget: 60,
            jobs,
            ..HuntOptions::default()
        }
    }

    #[test]
    fn seeded_hunt_finds_shrinks_and_replays() {
        let report = run_hunt(&seeded_options(1));
        assert!(
            report.divergences() > 0,
            "a seeded misroute must diverge within 6 probes:\n{}",
            report.table()
        );
        assert_eq!(report.repros.len(), 1);
        let repro = &report.repros[0];
        assert!(!repro.shrink_steps.is_empty(), "oversized draws must shrink");
        // The minimal reproducer replays to the same detector class.
        let replayed = repro
            .replay(&Telemetry::disabled())
            .unwrap()
            .expect("minimal repro still diverges");
        assert!(repro.matches(&replayed), "{replayed:?} vs {}", repro.detector);
        // And survives its own JSON round trip.
        let parsed = Repro::from_json(&repro.to_json()).unwrap();
        assert_eq!(parsed.to_json().render_pretty(), repro.to_json().render_pretty());
    }

    #[test]
    fn hunt_json_is_byte_identical_across_worker_counts() {
        let mut serial = run_hunt(&seeded_options(1));
        let mut parallel = run_hunt(&seeded_options(4));
        serial.strip_timings();
        parallel.strip_timings();
        let a = serial.hunt_json().render_pretty();
        let b = parallel.hunt_json().render_pretty();
        assert_eq!(a, b);
        assert!(a.contains(HUNT_SCHEMA));
    }
}
