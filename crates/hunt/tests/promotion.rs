//! End-to-end promotion round trip: hunt -> shrink -> `repro.json` ->
//! promoted catalogue -> qualification replay.
//!
//! This is the schema contract test between the producer
//! (`hunt::Repro::to_json`, schema `stbus-repro/1`) and the consumer
//! (`mutation::PromotedRepro`): a reproducer written by the fleet must
//! load, replay, and attribute through the qualification side without
//! any shared code.

use stbus_hunt::{run_hunt, HuntOptions, Injections};
use stbus_rtl::RtlBug;
use telemetry::Telemetry;

#[test]
fn promoted_reproducer_is_caught_and_attributed() {
    // A seeded hunt known to diverge (campaign seed 1, probe 6).
    let report = run_hunt(&HuntOptions {
        budget: 8,
        campaign_seed: 1,
        inject: Injections {
            rtl: vec![RtlBug::MisroutedHighTarget],
            bca: vec![],
        },
        max_shrinks: 1,
        shrink_budget: 60,
        jobs: 1,
        ..HuntOptions::default()
    });
    let repro = report.repros.first().expect("the seeded hunt must shrink a repro");

    // Pin it the way `--hunt-promote` does: one JSON file in a
    // catalogue directory, named by content id.
    let dir = std::env::temp_dir().join(format!("stbus_hunts_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(format!("{}.json", repro.id())),
        repro.to_json().render_pretty(),
    )
    .unwrap();

    // The qualification side loads and replays it independently.
    let entries = mutation::PromotedRepro::load_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].id, repro.id());
    assert_eq!(entries[0].detector_column, repro.detector_column);

    let outcomes = mutation::run_promoted(&entries, &Telemetry::disabled());
    assert_eq!(outcomes.len(), 1);
    let outcome = &outcomes[0];
    assert!(outcome.caught, "the pinned reproducer did not fire: {outcome:?}");
    assert!(
        outcome.attributed,
        "the pinned reproducer fired the wrong class: {outcome:?}"
    );

    // An empty (or absent) catalogue stays empty — the qualify path
    // must not invent entries.
    let missing = std::env::temp_dir().join("stbus_hunts_definitely_missing");
    assert!(mutation::PromotedRepro::load_dir(&missing).unwrap().is_empty());
}
