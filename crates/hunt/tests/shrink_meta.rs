//! Meta-test for the shrinker: plant a known catalogue defect in a
//! deliberately oversized probe and check the delta-debugger converges
//! to a genuinely minimal reproducer without losing the detector class.
//!
//! This is the hunt's own qualification: the fleet is only trustworthy
//! if its shrink lattice actually descends — an oversized find that
//! stays oversized is a reproducer nobody will read.

use catg::{ConstraintModel, TargetProfile};
use cdg::Recipe;
use stbus_hunt::{run_probe, shrink, Injections};
use stbus_protocol::{Architecture, ArbitrationKind, NodeConfig, ProtocolType};
use stbus_rtl::RtlBug;
use telemetry::Telemetry;

/// A 4x4 fully-featured node: far more machinery than the misroute
/// needs, so every axis of the shrink lattice has room to move.
fn oversized_config() -> NodeConfig {
    NodeConfig::builder("oversized")
        .initiators(4)
        .targets(4)
        .bus_bytes(8)
        .protocol(ProtocolType::Type3)
        .architecture(Architecture::FullCrossbar)
        .arbitration(ArbitrationKind::Lru)
        .prog_port(true)
        .pipe_depth(2)
        .build()
        .expect("oversized config is valid")
}

/// A deliberately fat recipe: every initiator drives uniform traffic at
/// all four targets, plus a two-phase programming schedule the defect
/// does not need at all.
fn oversized_recipe(config: &NodeConfig) -> Recipe {
    let model = ConstraintModel {
        n_transactions: 20,
        targets: Vec::new(), // uniform over all targets — the top one included
        ..ConstraintModel::default()
    };
    let mut recipe = Recipe {
        name: "oversized".to_owned(),
        models: vec![model; config.n_initiators],
        target_profiles: vec![TargetProfile::default(); config.n_targets],
        prog_schedule: vec![(0, vec![0, 1, 2, 3]), (200, vec![3, 2, 1, 0])],
    };
    recipe.normalize(config);
    recipe
}

#[test]
fn planted_misroute_shrinks_to_a_minimal_reproducer() {
    let config = oversized_config();
    let recipe = oversized_recipe(&config);
    let inject = Injections {
        rtl: vec![RtlBug::MisroutedHighTarget],
        bca: vec![],
    };
    let tel = Telemetry::disabled();
    let seed = 7;

    let finding = run_probe(&config, &recipe, seed, &inject, &tel)
        .expect("a misroute under uniform 4x4 traffic must diverge");
    let column = finding.detector.column();

    let result = shrink(&config, &recipe, seed, &inject, column, 400, &tel);

    // The defect misroutes traffic aimed at the highest target, so two
    // targets (a victim and the misrouting one) and one initiator are
    // all it can possibly need — the shrinker must get there.
    assert!(
        result.config.n_initiators <= 2,
        "initiators did not shrink: {} (steps {:?})",
        result.config.n_initiators,
        result.steps
    );
    assert!(
        result.config.n_targets <= 2,
        "targets did not shrink: {} (steps {:?})",
        result.config.n_targets,
        result.steps
    );
    assert!(
        result.recipe.prog_schedule.is_empty(),
        "the irrelevant programming schedule survived: {:?}",
        result.recipe.prog_schedule
    );
    assert!(!result.steps.is_empty(), "no reductions were accepted");
    // The shrink preserved the detector class it was asked to keep.
    assert_eq!(result.finding.detector.column(), column);
    // And the minimal probe genuinely still fires, from scratch.
    let replayed = run_probe(&result.config, &result.recipe, seed, &inject, &tel)
        .expect("the shrunk reproducer must still diverge");
    assert_eq!(replayed.detector.column(), column);
}

#[test]
fn shrink_is_deterministic() {
    let config = oversized_config();
    let recipe = oversized_recipe(&config);
    let inject = Injections {
        rtl: vec![RtlBug::MisroutedHighTarget],
        bca: vec![],
    };
    let tel = Telemetry::disabled();
    let a = shrink(&config, &recipe, 7, &inject, "checker", 120, &tel);
    let b = shrink(&config, &recipe, 7, &inject, "checker", 120, &tel);
    assert_eq!(a.config, b.config);
    assert_eq!(a.recipe, b.recipe);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.evaluations, b.evaluations);
}
