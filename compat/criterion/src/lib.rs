//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate provides a
//! minimal-but-functional timing harness with the API subset the bench
//! targets use: `Criterion::default().sample_size(..)`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is timed over `sample_size`
//! samples (after a small warm-up) and the mean/min per-iteration times
//! print to stdout — no statistics engine, no HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort safe
/// implementation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// No-op CLI passthrough, kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            sample_size,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }
}

/// A named benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Times `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.label, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; its [`iter`](Bencher::iter) method
/// does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate the per-sample iteration count to ~5 ms, capped for
    // long-running routines.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters.max(1) as u32;
        total += per;
        best = best.min(per);
    }
    let mean = total / sample_size.max(1) as u32;
    println!(
        "  {id:<40} mean {mean:>12?}  min {best:>12?}  ({sample_size} samples x {iters} iters)"
    );
}

/// Declares a benchmark group as a function list or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("test");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| x.wrapping_mul(7))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        trivial(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
