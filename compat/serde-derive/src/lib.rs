//! Offline stand-in for `serde_derive`.
//!
//! The container this repo builds in has no access to crates.io, so the
//! real `serde` cannot be vendored. The codebase only *tags* types with
//! `#[derive(Serialize, Deserialize)]` — nothing performs actual
//! serialization through serde (the telemetry crate hand-rolls its JSON).
//! These derives therefore expand to nothing; the companion `serde` stub
//! blanket-implements the marker traits so bounds keep compiling.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
