//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no crates.io access, so this crate provides the
//! small API subset the workspace uses: [`rngs::StdRng`] (seedable from a
//! `u64`), [`Rng::gen`], [`Rng::gen_range`] over integer ranges and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, which is all the verification
//! environment requires ("same test cases on both with same seeds").
//!
//! The stream differs from the real `StdRng` (ChaCha12), so absolute
//! stimulus sequences are not bit-identical to an online build; every
//! consumer in this workspace only relies on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types uniformly samplable from a bounded span. The single
/// generic [`SampleRange`] impl below keeps type inference working the
/// way real rand's does (`gen_range(0..100) < some_u32` infers `u32`).
pub trait SampleUniform: Sized + Copy {
    /// Uniform value in `[low, high)` (`high` exclusive).
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform value in `[low, high]` (inclusive).
    fn sample_span_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_span_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_span(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_span_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a half-open or inclusive integer range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i64 = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn gen_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(rng.gen::<bool>())] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
