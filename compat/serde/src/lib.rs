//! Offline stand-in for `serde`.
//!
//! See `serde_derive`'s crate docs for the rationale. The traits are
//! markers with blanket implementations: every type "is" `Serialize` /
//! `Deserialize`, which satisfies any bound the workspace writes while the
//! no-op derives keep the `#[derive(...)]` attributes valid.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
