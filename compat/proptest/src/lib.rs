//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access. This crate reimplements
//! the subset the workspace's property tests use — integer-range, tuple,
//! `any::<T>()` and `collection::vec` strategies, `.prop_map`, the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! and `prop_assert!`/`prop_assert_eq!` — as plain deterministic random
//! sampling. There is no shrinking: a failing case panics with the
//! sampled inputs in the assertion message, which the regression flow
//! treats exactly like any other failing test.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Number of sampled cases when a `proptest!` block carries no
/// `#![proptest_config(...)]` header.
pub const DEFAULT_CASES: u32 = 32;

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// The sampling RNG handed to strategies; deterministic per test and case.
pub type TestRng = StdRng;

/// Builds the per-case RNG: test name and case index pin the stream, so a
/// failure reproduces on rerun.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy just samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The `.prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Types with a full-domain default strategy (`any::<T>()` or a bare
/// `name: Type` parameter in `proptest!`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniform choice between boxed strategies of one value type; built by
/// [`prop_oneof!`].
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let k = rng.gen_range(0..self.0.len());
        self.0[k].sample(rng)
    }
}

/// Boxes one `prop_oneof!` arm. A function rather than an `as`-cast so
/// the arms' value types unify through inference (integer literals in a
/// later arm pick up the type of the first).
pub fn union_arm<T, S: Strategy<Value = T> + 'static>(strat: S) -> Box<dyn Strategy<Value = T>> {
    Box::new(strat)
}

/// Chooses uniformly between strategies producing the same type
/// (`proptest::prop_oneof!`; weights are not supported — every arm is
/// equally likely).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::union_arm($strat)),+])
    };
}

/// Skips the current case when the assumption does not hold
/// (`proptest::prop_assume!`). Unlike real proptest the rejected case is
/// not replaced, so heavy use thins the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A `Vec` strategy: length drawn from `len`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length falls in `len` (half-open or
    /// inclusive).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    /// A length specification convertible from range syntax.
    pub struct SizeRange(pub std::ops::Range<usize>);

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end().saturating_add(1))
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, Union,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Binds `proptest!` parameters: `pat in strategy` samples the strategy,
/// `name: Type` samples `any::<Type>()`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat_param in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}

/// Expands the test functions of a `proptest!` block under a given config.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $crate::__proptest_bindings!(rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` header
/// followed by `#[test]` functions whose parameters are strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::case_rng("ranges", 0);
        let s = (1usize..=4, 0u64..50, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.sample(&mut rng);
            assert!((1..=4).contains(&a));
            assert!(b < 50);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::case_rng("vec", 0);
        let s = collection::vec(any::<u8>(), 1..6);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::case_rng("map", 0);
        let s = (0usize..3).prop_map(|x| x * 10);
        for _ in 0..50 {
            assert!(matches!(s.sample(&mut rng), 0 | 10 | 20));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_form_runs(x in 0u32..10, flag: bool, v in collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(x.wrapping_add(u32::from(flag)).wrapping_sub(u32::from(flag)), x);
            prop_assert!(v.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_runs(seed: u64) {
            let _ = seed;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_samples_every_arm_and_assume_skips(pick in prop_oneof![Just(1u8), Just(2), 3u8..=4]) {
            prop_assert!((1..=4).contains(&pick));
            prop_assume!(pick != 2);
            prop_assert_ne!(pick, 2);
        }
    }

    #[test]
    fn oneof_is_roughly_uniform() {
        let mut rng = crate::case_rng("oneof", 0);
        let s = prop_oneof![Just(0usize), Just(1), Just(2)];
        let mut seen = [0usize; 3];
        for _ in 0..300 {
            seen[s.sample(&mut rng)] += 1;
        }
        assert!(seen.iter().all(|&n| n > 50), "skewed: {seen:?}");
    }
}
