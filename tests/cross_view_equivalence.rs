//! Property test: the RTL view and the exact-fidelity BCA view are
//! cycle-for-cycle equivalent at the port boundary under arbitrary legal
//! stimulus — for every protocol type, architecture, arbitration policy
//! and pipeline depth.
//!
//! This is the strongest statement the common environment can make about
//! the two independently-implemented models, and the foundation of the
//! paper's alignment methodology.

use proptest::prelude::*;
use stbus_bca::{BcaNode, Fidelity};
use stbus_protocol::packet::{PacketParams, RequestPacket};
use stbus_protocol::{
    ArbitrationKind, Architecture, DutInputs, DutView, InitiatorId, NodeConfig, Opcode,
    ProtocolType, RspCell, TransactionId, TransferSize,
};
use stbus_rtl::RtlNode;

/// A compact recipe for a legal configuration.
#[derive(Clone, Debug)]
struct ConfigRecipe {
    ni: usize,
    nt: usize,
    bus_log2: usize,
    protocol: usize,
    arch: usize,
    arbitration: usize,
    pipe: usize,
}

fn recipe_strategy() -> impl Strategy<Value = ConfigRecipe> {
    (
        1usize..=3,
        1usize..=3,
        0usize..=4,
        0usize..=2,
        0usize..=2,
        0usize..=5,
        0usize..=1,
    )
        .prop_map(
            |(ni, nt, bus_log2, protocol, arch, arbitration, pipe)| ConfigRecipe {
                ni,
                nt,
                bus_log2,
                protocol,
                arch,
                arbitration,
                pipe,
            },
        )
}

fn build_config(r: &ConfigRecipe) -> NodeConfig {
    let protocol = [
        ProtocolType::Type1,
        ProtocolType::Type2,
        ProtocolType::Type3,
    ][r.protocol];
    let arch = [
        Architecture::SharedBus,
        Architecture::PartialCrossbar { lanes: 2 },
        Architecture::FullCrossbar,
    ][r.arch];
    NodeConfig::builder("prop")
        .initiators(r.ni)
        .targets(r.nt)
        .bus_bytes(1 << r.bus_log2)
        .protocol(protocol)
        .architecture(arch)
        .arbitration(ArbitrationKind::ALL[r.arbitration])
        .pipe_depth(r.pipe)
        .prog_port(true)
        .build()
        .expect("recipe is legal")
}

/// A simple deterministic stimulus driver: each initiator cycles through
/// pseudo-random single-cell loads; targets accept and respond with a
/// fixed pattern. This is *not* the full BFM — the point is raw port-level
/// equality, including under rude (always-on) stimulus.
fn stimulus(
    cfg: &NodeConfig,
    cycle: u64,
    seed: u64,
    last_out: &stbus_protocol::DutOutputs,
) -> DutInputs {
    let params = PacketParams {
        bus_bytes: cfg.bus_bytes,
        protocol: cfg.protocol,
        endianness: cfg.endianness,
    };
    let mut inputs = DutInputs::idle(cfg);
    for i in 0..cfg.n_initiators {
        let x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cycle / 3)
            .wrapping_add(i as u64 * 977);
        let h = x ^ (x >> 31);
        let t = (h as usize) % cfg.n_targets;
        let size = TransferSize::B4;
        let addr = ((t as u64) << 24) + ((h >> 8) % 64) * size.bytes() as u64;
        let pkt = RequestPacket::build(
            Opcode::load(size),
            addr,
            &[],
            params,
            InitiatorId(i as u8),
            TransactionId((h % 4) as u8),
            0,
            false,
        )
        .expect("legal");
        inputs.initiator[i].req = !h.is_multiple_of(5);
        inputs.initiator[i].cell = pkt.cells()[0];
        inputs.initiator[i].r_gnt = !h.is_multiple_of(7);
    }
    for t in 0..cfg.n_targets {
        let x = seed.wrapping_add(cycle * 31).wrapping_add(t as u64 * 131);
        let h = x ^ (x >> 17);
        inputs.target[t].gnt = !h.is_multiple_of(4);
        // Echo a response whenever the node granted us something earlier:
        // approximate a slave by replying to the last forwarded source.
        let (req, cell, _) = (
            last_out.target[t].req,
            last_out.target[t].cell,
            last_out.target[t].r_gnt,
        );
        if req && !h.is_multiple_of(3) {
            inputs.target[t].r_req = true;
            inputs.target[t].r_cell = RspCell::ok(cell.src, cell.tid, true);
        }
    }
    inputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rtl_and_exact_bca_agree_cycle_by_cycle(recipe in recipe_strategy(), seed: u64) {
        let cfg = build_config(&recipe);
        let mut rtl = RtlNode::new(cfg.clone());
        let mut bca = BcaNode::new(cfg.clone(), Fidelity::Exact);
        let mut last = stbus_protocol::DutOutputs::idle(&cfg);
        for cycle in 0..120u64 {
            let inputs = stimulus(&cfg, cycle, seed, &last);
            let a = rtl.step(&inputs);
            let b = bca.step(&inputs);
            prop_assert_eq!(&a, &b, "config {:?} diverged at cycle {}", recipe, cycle);
            last = a;
        }
    }

    #[test]
    fn reset_equivalence_holds(recipe in recipe_strategy(), seed: u64) {
        // Resetting mid-stream returns both views to identical states.
        let cfg = build_config(&recipe);
        let mut rtl = RtlNode::new(cfg.clone());
        let mut bca = BcaNode::new(cfg.clone(), Fidelity::Exact);
        let mut last = stbus_protocol::DutOutputs::idle(&cfg);
        for cycle in 0..30u64 {
            let inputs = stimulus(&cfg, cycle, seed, &last);
            last = rtl.step(&inputs);
            bca.step(&inputs);
        }
        rtl.reset();
        bca.reset();
        let mut last = stbus_protocol::DutOutputs::idle(&cfg);
        for cycle in 0..30u64 {
            let inputs = stimulus(&cfg, cycle, seed ^ 0xABCD, &last);
            let a = rtl.step(&inputs);
            let b = bca.step(&inputs);
            prop_assert_eq!(&a, &b, "after reset, cycle {}", cycle);
            last = a;
        }
    }
}
