//! Integration: STBA's transaction extraction against live runs — the
//! "extracts from VCD files … STBus transaction information" half of the
//! analyzer, fed by real dumps from both views.

use catg::{tests_lib, Testbench, TestbenchOptions};
use stba::{extract_transfers, TransferPhase};
use stbus_bca::{BcaNode, Fidelity};
use stbus_protocol::NodeConfig;
use stbus_rtl::RtlNode;
use vcd::VcdDocument;

fn run_pair(spec_intensity: usize, seed: u64) -> (String, String, NodeConfig) {
    let cfg = NodeConfig::reference();
    let bench = Testbench::new(
        cfg.clone(),
        TestbenchOptions {
            capture_vcd: true,
            ..TestbenchOptions::default()
        },
    );
    let spec = tests_lib::random_mixed(spec_intensity);
    let mut rtl = RtlNode::new(cfg.clone());
    let mut bca = BcaNode::new(cfg.clone(), Fidelity::Exact);
    let a = bench.run(&mut rtl, &spec, seed);
    let b = bench.run(&mut bca, &spec, seed);
    assert!(a.passed() && b.passed());
    (a.vcd.expect("captured"), b.vcd.expect("captured"), cfg)
}

#[test]
fn extracted_transfer_streams_match_across_views() {
    let (va, vb, cfg) = run_pair(25, 3);
    let da = VcdDocument::parse(&va).expect("well-formed");
    let db = VcdDocument::parse(&vb).expect("well-formed");
    let step = catg::vcd_cycle_time();
    for i in 0..cfg.n_initiators {
        let port = format!("init{i}");
        let ta = extract_transfers(&da, &port, step).expect("port exists");
        let tb = extract_transfers(&db, &port, step).expect("port exists");
        assert_eq!(ta, tb, "transfer stream differs at {port}");
        assert!(!ta.is_empty(), "{port} saw traffic");
    }
    for t in 0..cfg.n_targets {
        let port = format!("tgt{t}");
        let ta = extract_transfers(&da, &port, step).expect("port exists");
        let tb = extract_transfers(&db, &port, step).expect("port exists");
        assert_eq!(ta, tb, "transfer stream differs at {port}");
    }
}

#[test]
fn every_request_eventually_gets_a_response() {
    let (va, _, cfg) = run_pair(20, 7);
    let doc = VcdDocument::parse(&va).expect("well-formed");
    let step = catg::vcd_cycle_time();
    for i in 0..cfg.n_initiators {
        let transfers = extract_transfers(&doc, &format!("init{i}"), step).expect("port");
        let req_packets = transfers
            .iter()
            .filter(|t| t.phase == TransferPhase::Request && t.eop)
            .count();
        let rsp_packets = transfers
            .iter()
            .filter(|t| t.phase == TransferPhase::Response && t.eop)
            .count();
        assert_eq!(
            req_packets, rsp_packets,
            "init{i}: split transactions drained"
        );
        assert!(req_packets > 0);
    }
}

#[test]
fn request_conservation_between_port_sides() {
    // Every request packet that completed at the initiator side appears at
    // some target port (unmapped traffic aside — random_mixed issues none).
    let (va, _, cfg) = run_pair(20, 11);
    let doc = VcdDocument::parse(&va).expect("well-formed");
    let step = catg::vcd_cycle_time();
    let init_reqs: usize = (0..cfg.n_initiators)
        .map(|i| {
            extract_transfers(&doc, &format!("init{i}"), step)
                .expect("port")
                .iter()
                .filter(|t| t.phase == TransferPhase::Request && t.eop)
                .count()
        })
        .sum();
    let tgt_reqs: usize = (0..cfg.n_targets)
        .map(|t| {
            extract_transfers(&doc, &format!("tgt{t}"), step)
                .expect("port")
                .iter()
                .filter(|t| t.phase == TransferPhase::Request && t.eop)
                .count()
        })
        .sum();
    assert_eq!(
        init_reqs, tgt_reqs,
        "no packet lost or duplicated in the node"
    );
}
