//! Integration test for experiment E2: the common environment finds all
//! five catalogue bugs; the legacy past-flow bench finds only the
//! byte-enable one.
//!
//! The campaign shape (configurations, tests, seeds, alignment spec,
//! sign-off threshold) lives in [`tests_lib::qualification`] and is shared
//! with the mutation-qualification engine (`stbus_regress --qualify`), so
//! this test and the qualification campaign can never drift apart.

use catg::tests_lib::qualification as qual;
use catg::LegacyTestbench;
use stbus_bca::{BcaBug, BcaNode, Fidelity};
use stbus_protocol::{DutView, NodeConfig};
use stbus_rtl::RtlNode;

fn buggy_bca(config: &NodeConfig, bug: BcaBug) -> BcaNode {
    let mut node = BcaNode::new(config.clone(), Fidelity::Exact);
    node.inject_bug(bug);
    node
}

/// Runs the functional stage of the common environment on a buggy node
/// over both hunt configurations; returns true when any run fails.
fn functional_stage_detects(bug: BcaBug) -> bool {
    qual::functional_detects(&qual::hunt_configs(), |config| {
        Box::new(buggy_bca(config, bug)) as Box<dyn DutView>
    })
}

/// Runs the alignment stage (the flow's second quality metric).
fn alignment_stage_detects(bug: BcaBug) -> bool {
    let config = NodeConfig::reference();
    let mut rtl = RtlNode::new(config.clone());
    let mut node = buggy_bca(&config, bug);
    qual::alignment_detects(&config, &mut rtl, &mut node)
}

#[test]
fn common_environment_finds_all_five_bugs() {
    for bug in BcaBug::ALL {
        let found = functional_stage_detects(bug) || alignment_stage_detects(bug);
        assert!(found, "{bug} evaded the common environment");
    }
}

#[test]
fn legacy_flow_finds_only_the_byte_enable_bug() {
    for bug in BcaBug::ALL {
        let mut detected = false;
        for config in qual::hunt_configs() {
            let legacy = LegacyTestbench::new(config.clone());
            let mut node = buggy_bca(&config, bug);
            detected |= !legacy.run(&mut node).passed;
        }
        assert_eq!(
            detected,
            bug == BcaBug::DroppedByteEnables,
            "legacy flow detection of {bug} contradicts the paper narrative"
        );
    }
}

#[test]
fn clean_model_passes_everything() {
    // Sanity for the experiment: with no bug injected, both stages pass.
    let reference = [NodeConfig::reference()];
    assert!(!qual::functional_detects(&reference, |config| {
        Box::new(BcaNode::new(config.clone(), Fidelity::Exact)) as Box<dyn DutView>
    }));
}
