//! Integration test for experiment E2: the common environment finds all
//! five catalogue bugs; the legacy past-flow bench finds only the
//! byte-enable one.

use catg::{tests_lib, LegacyTestbench, Testbench, TestbenchOptions};
use stbus_bca::{BcaBug, BcaNode, Fidelity};
use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType};
use stbus_rtl::RtlNode;

fn t2_config() -> NodeConfig {
    NodeConfig::builder("t2_hunt")
        .initiators(3)
        .targets(2)
        .bus_bytes(8)
        .protocol(ProtocolType::Type2)
        .architecture(Architecture::FullCrossbar)
        .arbitration(ArbitrationKind::Lru)
        .build()
        .expect("valid")
}

/// Runs the functional stage of the common environment on a buggy node
/// over both hunt configurations; returns true when any run fails.
fn functional_stage_detects(bug: BcaBug) -> bool {
    for config in [NodeConfig::reference(), t2_config()] {
        let bench = Testbench::new(config.clone(), TestbenchOptions::default());
        let mut node = BcaNode::new(config.clone(), Fidelity::Exact);
        node.inject_bug(bug);
        for spec in tests_lib::all(20) {
            for seed in [1u64, 2] {
                if !bench.run(&mut node, &spec, seed).passed() {
                    return true;
                }
            }
        }
    }
    false
}

/// Runs the alignment stage (the flow's second quality metric).
fn alignment_stage_detects(bug: BcaBug) -> bool {
    let config = NodeConfig::reference();
    let bench = Testbench::new(
        config.clone(),
        TestbenchOptions {
            capture_vcd: true,
            ..TestbenchOptions::default()
        },
    );
    let mut rtl = RtlNode::new(config.clone());
    let mut node = BcaNode::new(config.clone(), Fidelity::Exact);
    node.inject_bug(bug);
    let spec = tests_lib::lru_fairness(25);
    let a = bench.run(&mut rtl, &spec, 1);
    let b = bench.run(&mut node, &spec, 1);
    match (&a.vcd, &b.vcd) {
        (Some(va), Some(vb)) => {
            let report = stba::compare_vcd(va, vb, catg::vcd_cycle_time()).expect("same tree");
            !report.signed_off(0.99)
        }
        _ => false,
    }
}

#[test]
fn common_environment_finds_all_five_bugs() {
    for bug in BcaBug::ALL {
        let found = functional_stage_detects(bug) || alignment_stage_detects(bug);
        assert!(found, "{bug} evaded the common environment");
    }
}

#[test]
fn legacy_flow_finds_only_the_byte_enable_bug() {
    for bug in BcaBug::ALL {
        let mut detected = false;
        for config in [NodeConfig::reference(), t2_config()] {
            let legacy = LegacyTestbench::new(config.clone());
            let mut node = BcaNode::new(config.clone(), Fidelity::Exact);
            node.inject_bug(bug);
            detected |= !legacy.run(&mut node).passed;
        }
        assert_eq!(
            detected,
            bug == BcaBug::DroppedByteEnables,
            "legacy flow detection of {bug} contradicts the paper narrative"
        );
    }
}

#[test]
fn clean_model_passes_everything() {
    // Sanity for the experiment: with no bug injected, both stages pass.
    assert!(!functional_stage_detects_clean());
    fn functional_stage_detects_clean() -> bool {
        let config = NodeConfig::reference();
        let bench = Testbench::new(config.clone(), TestbenchOptions::default());
        let mut node = BcaNode::new(config.clone(), Fidelity::Exact);
        for spec in tests_lib::all(15) {
            if !bench.run(&mut node, &spec, 1).passed() {
                return true;
            }
        }
        false
    }
}
