//! Property: every catalogue RTL defect is detected by the common
//! environment on *randomly drawn* node configurations, not just on the
//! four hand-picked qualification shapes. For each bug we draw legal
//! configurations from the shared strategy, minimally specialize them so
//! the defect's trigger hardware exists (a partial-crossbar lane bug
//! needs a partial crossbar), and require at least one `{test, seed}`
//! cell — or the alignment comparison against the clean opposite view —
//! to fire.

use catg::tests_lib::strategy::config_strategy;
use catg::tests_lib::{self, qualification as qual};
use proptest::prelude::*;
use stbus_bca::{BcaNode, Fidelity};
use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType};
use stbus_rtl::{RtlBug, RtlNode};

/// Rebuilds `base` so that `bug` is *applicable*: the structures the
/// defect lives in (top-target decode, priority register, partial lanes,
/// chunk arbitration under contention) must exist, otherwise the mutation
/// is dead code and "not detected" is the correct verdict.
fn specialize(bug: RtlBug, base: &NodeConfig) -> NodeConfig {
    let mut ni = base.n_initiators.max(2);
    let mut nt = base.n_targets;
    let mut bus_bytes = base.bus_bytes;
    let mut protocol = base.protocol;
    let mut arch = base.arch;
    let mut arbitration = base.arbitration;
    let mut prog_port = base.prog_port;
    let mut max_outstanding = base.max_outstanding;
    match bug {
        // Needs a third-party thief with a live request and outstanding
        // credit at the moment the winner stalls. Under latency-based
        // arbitration the dropped hold is an *equivalent mutant*:
        // re-arbitrating mid-wait re-picks the longest-waiting port,
        // i.e. the same winner.
        RtlBug::DroppedGrantHold => {
            ni = ni.max(3);
            if arbitration == ArbitrationKind::LatencyBased {
                arbitration = ArbitrationKind::Lru;
            }
            max_outstanding = max_outstanding.max(3);
        }
        // Needs a top target distinct from its neighbour.
        RtlBug::MisroutedHighTarget => nt = nt.max(2),
        // Only the variable-priority policy reads the priority register,
        // and the wrong grant winner is only *visible* when requests
        // actually collide at arbitration instants: blocking Type1
        // traffic, narrow buses (long serialized bursts), and tight
        // outstanding limits each keep the requesters in lockstep where
        // both priority orders pick the same initiator.
        RtlBug::UnsampledPriorityPort => {
            arbitration = ArbitrationKind::VariablePriority;
            prog_port = true;
            if protocol == ProtocolType::Type1 {
                protocol = ProtocolType::Type3;
            }
            bus_bytes = bus_bytes.max(4);
            max_outstanding = max_outstanding.max(3);
        }
        // Lane mask only binds when lanes are both limiting and > 1.
        RtlBug::PartialLaneOffByOne => {
            ni = ni.max(3);
            nt = nt.max(3);
            arch = Architecture::PartialCrossbar { lanes: 2 };
        }
        // Any configuration can address unmapped memory.
        RtlBug::ErrorKindDropped => {}
        // Chunk filtering only exists for split-transaction protocols
        // (the `ChunkFiltered` probe point is gated on them), and an
        // interloper must be able to slip inside the opened chunk.
        RtlBug::EarlyChunkRelease => {
            if protocol == ProtocolType::Type1 {
                protocol = ProtocolType::Type3;
            }
        }
    }
    NodeConfig::builder(&format!("rand_{}", bug.label()))
        .initiators(ni)
        .targets(nt)
        .bus_bytes(bus_bytes)
        .protocol(protocol)
        .architecture(arch)
        .arbitration(arbitration)
        .pipe_depth(base.pipe_depth)
        .prog_port(prog_port)
        .max_outstanding(max_outstanding)
        .build()
        .expect("specialized config is legal")
}

/// The functional tests most sensitive to each defect (from the
/// qualification campaign's detection matrix); empty for the two bugs
/// that are functionally invisible and only show as alignment drops.
fn hunting_tests(bug: RtlBug, intensity: usize) -> Vec<catg::TestSpec> {
    match bug {
        RtlBug::DroppedGrantHold => vec![
            tests_lib::out_of_order(intensity),
            tests_lib::target_stall_storm(intensity),
        ],
        RtlBug::MisroutedHighTarget => vec![
            tests_lib::basic_read_write(intensity),
            tests_lib::random_mixed(intensity),
            tests_lib::out_of_order(intensity),
        ],
        RtlBug::UnsampledPriorityPort | RtlBug::PartialLaneOffByOne => vec![],
        RtlBug::ErrorKindDropped => vec![tests_lib::error_responses(intensity)],
        RtlBug::EarlyChunkRelease => vec![
            tests_lib::chunk_locking(intensity),
            tests_lib::target_stall_storm(intensity),
        ],
    }
}

/// The alignment specs that make each defect's cycle behaviour diverge.
fn alignment_tests(bug: RtlBug, intensity: usize) -> Vec<catg::TestSpec> {
    match bug {
        RtlBug::UnsampledPriorityPort => vec![tests_lib::priority_prog(intensity)],
        RtlBug::PartialLaneOffByOne => vec![
            tests_lib::lru_fairness(intensity),
            tests_lib::priority_prog(intensity),
        ],
        _ => vec![],
    }
}

/// True when the environment distinguishes the mutated RTL node from a
/// clean one on this configuration: a functional cell fails, or the
/// mutated pair's alignment rate drops strictly below the clean pair's.
fn detected(bug: RtlBug, config: &NodeConfig) -> bool {
    // A wider seed range than the qualification campaign's: on marginal
    // {config, policy} corners a single seed's traffic can miss the
    // stall/collision window the defect needs, and one firing cell is
    // all this property asks for.
    for spec in hunting_tests(bug, 20) {
        for seed in 1u64..=5 {
            let mut mutated = RtlNode::with_bugs(config.clone(), &[bug]);
            if qual::functional_cell_fails(config, &mut mutated, &spec, seed) {
                return true;
            }
        }
    }
    for spec in alignment_tests(bug, 15) {
        // Alignment cells get the same multi-seed treatment: whether the
        // wrong arbitration winner surfaces inside the compared window
        // depends on the drawn traffic, so a single seed can stay 100%
        // aligned on shapes where the next seed drops to 50%.
        for seed in 1u64..=5 {
            let rate = |dut: &mut dyn stbus_protocol::DutView| {
                let bench = catg::Testbench::new(config.clone(), qual::alignment_options());
                let mut bca = BcaNode::new(config.clone(), Fidelity::Exact);
                let a = bench.run(&mut bca, &spec, seed);
                let b = bench.run(dut, &spec, seed);
                match (&a.vcd, &b.vcd) {
                    (Some(va), Some(vb)) => stba::compare_vcd(va, vb, catg::vcd_cycle_time())
                        .ok()
                        .map(|r| r.min_rate()),
                    _ => None,
                }
            };
            let baseline = rate(&mut RtlNode::new(config.clone()));
            let mutated = rate(&mut RtlNode::with_bugs(config.clone(), &[bug]));
            if let (Some(base), Some(mutated)) = (baseline, mutated) {
                if mutated < base {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn every_rtl_bug_is_detected_on_random_configs(base in config_strategy()) {
        for bug in RtlBug::ALL {
            let config = specialize(bug, &base);
            prop_assert!(
                detected(bug, &config),
                "{bug} evaded the environment on {config}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Equivalent mutants: the inverse property. On configurations where a
// defect's trigger hardware is absent or its observable effect collapses
// onto clean behaviour, "not detected" is the *correct* verdict — these
// pin the prose rationales in `specialize` as executable facts, so a
// future environment change that starts "detecting" dead code (or stops
// needing the specialization) breaks a test instead of a comment.
// ---------------------------------------------------------------------

/// Re-arbitrating mid-wait under latency-based arbitration re-picks the
/// longest-waiting port — the same winner the dropped hold would have
/// kept, so the mutant is equivalent.
#[test]
fn dropped_grant_hold_is_equivalent_under_latency_based_arbitration() {
    let config = NodeConfig::builder("eq_r1_latency")
        .initiators(3)
        .targets(2)
        .bus_bytes(8)
        .protocol(ProtocolType::Type3)
        .arbitration(ArbitrationKind::LatencyBased)
        .max_outstanding(3)
        .build()
        .expect("config is legal");
    assert!(
        !detected(RtlBug::DroppedGrantHold, &config),
        "a dropped grant hold must be invisible under latency-based arbitration"
    );
}

/// Only the variable-priority policy reads the priority register; under
/// fixed priority the unsampled port is dead code even with the
/// programming port present and programmed.
#[test]
fn unsampled_priority_port_is_equivalent_without_variable_priority() {
    let config = NodeConfig::builder("eq_r3_fixed")
        .initiators(3)
        .targets(2)
        .bus_bytes(8)
        .protocol(ProtocolType::Type3)
        .arbitration(ArbitrationKind::FixedPriority)
        .prog_port(true)
        .max_outstanding(3)
        .build()
        .expect("config is legal");
    assert!(
        !detected(RtlBug::UnsampledPriorityPort, &config),
        "the priority register is unread under fixed priority; the mutant is dead code"
    );
}

/// The off-by-one lane mask only binds when the partial crossbar's lane
/// count is both limiting and greater than one; a full crossbar has no
/// lane arbitration at all.
#[test]
fn partial_lane_off_by_one_is_equivalent_on_a_full_crossbar() {
    let config = NodeConfig::builder("eq_r4_full")
        .initiators(3)
        .targets(3)
        .bus_bytes(8)
        .protocol(ProtocolType::Type3)
        .architecture(Architecture::FullCrossbar)
        .arbitration(ArbitrationKind::Lru)
        .build()
        .expect("config is legal");
    assert!(
        !detected(RtlBug::PartialLaneOffByOne, &config),
        "without partial-crossbar lanes the lane mask is never consulted"
    );
}

/// Chunk filtering only exists for the split-transaction protocols; on
/// blocking Type1 the `ChunkFiltered` probe point is gated off and an
/// early release has nothing to release early.
#[test]
fn early_chunk_release_is_equivalent_under_type1() {
    let config = NodeConfig::builder("eq_r6_type1")
        .initiators(3)
        .targets(2)
        .bus_bytes(4)
        .protocol(ProtocolType::Type1)
        .arbitration(ArbitrationKind::Lru)
        .build()
        .expect("config is legal");
    assert!(
        !detected(RtlBug::EarlyChunkRelease, &config),
        "chunk locking does not exist on Type1; the mutant must stay silent"
    );
}
