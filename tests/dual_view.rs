//! Cross-crate integration: the same tests and seeds run on both design
//! views, and the STBA analyzer measures how well the waveforms align —
//! the paper's central claim, end to end.

use catg::{tests_lib, Testbench, TestbenchOptions};
use stbus_bca::{BcaNode, Fidelity};
use stbus_protocol::{DutView, NodeConfig, ViewKind};
use stbus_rtl::RtlNode;

fn tb(cfg: &NodeConfig) -> Testbench {
    Testbench::new(
        cfg.clone(),
        TestbenchOptions {
            capture_vcd: true,
            ..TestbenchOptions::default()
        },
    )
}

#[test]
fn exact_bca_aligns_100_percent_with_rtl() {
    let cfg = NodeConfig::reference();
    let bench = tb(&cfg);
    for spec in [tests_lib::random_mixed(30), tests_lib::out_of_order(30)] {
        let mut rtl = RtlNode::new(cfg.clone());
        let mut bca = BcaNode::new(cfg.clone(), Fidelity::Exact);
        let ra = bench.run(&mut rtl, &spec, 11);
        let rb = bench.run(&mut bca, &spec, 11);
        assert!(
            ra.passed(),
            "RTL {}: {:?}",
            spec.name,
            ra.checker.violations
        );
        assert!(
            rb.passed(),
            "BCA {}: {:?}",
            spec.name,
            rb.checker.violations
        );
        let report = stba::compare_vcd(
            ra.vcd.as_ref().expect("captured"),
            rb.vcd.as_ref().expect("captured"),
            catg::vcd_cycle_time(),
        )
        .expect("same structure");
        assert_eq!(
            report.min_rate(),
            1.0,
            "{}: exact fidelity must align fully\n{report}",
            spec.name
        );
    }
}

#[test]
fn relaxed_bca_stays_above_sign_off_threshold() {
    let cfg = NodeConfig::reference();
    let bench = tb(&cfg);
    let spec = tests_lib::out_of_order(40);
    let mut rtl = RtlNode::new(cfg.clone());
    let mut bca = BcaNode::new(cfg.clone(), Fidelity::Relaxed);
    let ra = bench.run(&mut rtl, &spec, 5);
    let rb = bench.run(&mut bca, &spec, 5);
    assert!(ra.passed() && rb.passed());
    let report = stba::compare_vcd(
        ra.vcd.as_ref().unwrap(),
        rb.vcd.as_ref().unwrap(),
        catg::vcd_cycle_time(),
    )
    .unwrap();
    assert!(
        report.signed_off(0.99),
        "alignment below the 99% sign-off target:\n{report}"
    );
}

#[test]
fn both_views_complete_identical_transaction_counts() {
    let cfg = NodeConfig::reference();
    let bench = Testbench::new(cfg.clone(), TestbenchOptions::default());
    for spec in tests_lib::all(15) {
        let mut rtl: Box<dyn DutView> = catg::build_view(&cfg, ViewKind::Rtl);
        let mut bca: Box<dyn DutView> = catg::build_view(&cfg, ViewKind::Bca);
        let ra = bench.run(rtl.as_mut(), &spec, 3);
        let rb = bench.run(bca.as_mut(), &spec, 3);
        assert!(
            ra.passed(),
            "RTL {}: {:?} {:?}",
            spec.name,
            ra.checker.violations,
            ra.scoreboard_errors
        );
        assert!(
            rb.passed(),
            "BCA {}: {:?} {:?}",
            spec.name,
            rb.checker.violations,
            rb.scoreboard_errors
        );
        assert_eq!(ra.transactions, rb.transactions, "{}", spec.name);
    }
}
