//! Property: for *any* legal node configuration and any seed, the common
//! environment runs clean on both views — no checker false positives, no
//! scoreboard mismatches, no stuck traffic. This is the environment's own
//! qualification suite ("some bugs could be given by verification
//! environment", §4 — this guards against those).

use catg::tests_lib::strategy::config_strategy;
use catg::{tests_lib, Testbench, TestbenchOptions};
use proptest::prelude::*;
use stbus_protocol::ViewKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn environment_runs_clean_on_random_configs(
        config in config_strategy(),
        seed: u64,
        test_idx in 0usize..12,
    ) {
        let bench = Testbench::new(config.clone(), TestbenchOptions::default());
        let spec = &tests_lib::all(8)[test_idx];
        for kind in [ViewKind::Rtl, ViewKind::Bca] {
            let mut dut = catg::build_view(&config, kind);
            let result = bench.run(dut.as_mut(), spec, seed);
            prop_assert!(
                result.passed(),
                "{} / {kind} / {} / seed {seed}: {:?} {:?} {:?}",
                config,
                spec.name,
                result.checker.violations.first(),
                result.scoreboard_errors.first(),
                result.anomalies.first(),
            );
        }
    }
}
