//! Helpers shared by the workspace-level integration tests.

use proptest::prelude::*;
use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType};

/// A strategy over *legal* node configurations: every combination this
/// produces must elaborate and run clean on both views. Shared by the
/// random-config environment suite and the RTL-bug property test so both
/// hunt over the same configuration space.
#[allow(dead_code)]
pub fn config_strategy() -> impl Strategy<Value = NodeConfig> {
    (
        1usize..=4,
        1usize..=4,
        0usize..=5,
        0usize..=2,
        0usize..=2,
        0usize..=5,
        0usize..=2,
        any::<bool>(),
        1usize..=6,
    )
        .prop_map(
            |(ni, nt, bus_log2, protocol, arch, arbitration, pipe, prog, outstanding)| {
                NodeConfig::builder("random")
                    .initiators(ni)
                    .targets(nt)
                    .bus_bytes(1 << bus_log2)
                    .protocol(
                        [
                            ProtocolType::Type1,
                            ProtocolType::Type2,
                            ProtocolType::Type3,
                        ][protocol],
                    )
                    .architecture(
                        [
                            Architecture::SharedBus,
                            Architecture::PartialCrossbar { lanes: 2 },
                            Architecture::FullCrossbar,
                        ][arch],
                    )
                    .arbitration(ArbitrationKind::ALL[arbitration])
                    .pipe_depth(pipe)
                    .prog_port(prog)
                    .max_outstanding(outstanding)
                    .build()
                    .expect("strategy produces legal configs")
            },
        )
}
