//! The simulation kernel as a standalone product: classic small circuits
//! built purely from signals and processes, verifying HDL-style semantics
//! (nonblocking updates, delta convergence, edges, timed events) beyond
//! what the STBus node exercises.

use sim_kernel::{Edge, SimError, SimTime, Simulator, VecTrace};

#[test]
fn four_bit_counter_with_carry_chain() {
    // A ripple counter: bit k toggles on the falling edge of bit k-1.
    let mut sim = Simulator::new();
    let clk = sim.add_signal("clk", false);
    let bits: Vec<_> = (0..4)
        .map(|k| sim.add_signal(&format!("q{k}"), false))
        .collect();
    let mut prev = clk;
    for &bit in &bits {
        sim.add_clocked_process("toggle", prev, Edge::Falling, move |ctx| {
            let v = ctx.get(bit);
            ctx.set(bit, !v);
        });
        prev = bit;
    }
    sim.add_clock(clk, 5).unwrap();
    // 32 full clock periods = the 4-bit counter wraps exactly twice.
    sim.run_for(32 * 10).unwrap();
    let value: u32 = bits
        .iter()
        .enumerate()
        .map(|(k, b)| (sim.value(*b) as u32) << k)
        .sum();
    assert_eq!(value, 0, "counter wrapped to zero");
}

#[test]
fn gray_code_fsm_cycles_correctly() {
    // A 2-bit Gray-code state machine: 00 -> 01 -> 11 -> 10 -> 00.
    let mut sim = Simulator::new();
    let clk = sim.add_signal("clk", false);
    let state = sim.add_signal("state", 0u8);
    let seen = sim.add_signal("seen", 0u32); // bitmask of visited states
    sim.add_clocked_process("fsm", clk, Edge::Rising, move |ctx| {
        let s = ctx.get(state);
        let next = match s {
            0b00 => 0b01,
            0b01 => 0b11,
            0b11 => 0b10,
            _ => 0b00,
        };
        ctx.set(state, next);
        let v = ctx.get(seen);
        ctx.set(seen, v | (1 << next));
    });
    sim.add_clock(clk, 10).unwrap();
    sim.run_for(8 * 20).unwrap();
    assert_eq!(sim.value(seen), 0b1111, "all four states visited");
    assert_eq!(sim.value(state), 0b00, "back at reset state after 8 steps");
}

#[test]
fn alu_comb_cone_settles_in_one_pass() {
    // add -> shift -> compare chain: three chained combinational processes
    // settle through delta cycles without ever clocking.
    let mut sim = Simulator::new();
    let a = sim.add_signal("a", 0u32);
    let b = sim.add_signal("b", 0u32);
    let sum = sim.add_signal("sum", 0u32);
    let shifted = sim.add_signal("shifted", 0u32);
    let big = sim.add_signal("big", false);
    sim.add_comb_process("adder", &[a.id(), b.id()], move |ctx| {
        let v = ctx.get(a).wrapping_add(ctx.get(b));
        ctx.set(sum, v);
    });
    sim.add_comb_process("shifter", &[sum.id()], move |ctx| {
        let v = ctx.get(sum) << 1;
        ctx.set(shifted, v);
    });
    sim.add_comb_process("comparator", &[shifted.id()], move |ctx| {
        let v = ctx.get(shifted) > 100;
        ctx.set(big, v);
    });
    sim.drive(a, 30);
    sim.drive(b, 25);
    sim.settle().unwrap();
    assert_eq!(sim.value(sum), 55);
    assert_eq!(sim.value(shifted), 110);
    assert!(sim.value(big));
    sim.drive(b, 10);
    sim.settle().unwrap();
    assert!(!sim.value(big));
}

#[test]
fn handshake_between_producer_and_consumer() {
    // Producer asserts valid with data; consumer acks on the next clock;
    // producer advances on ack — four-phase-ish handshake across two
    // clocked processes.
    let mut sim = Simulator::new();
    let clk = sim.add_signal("clk", false);
    let valid = sim.add_signal("valid", false);
    let data = sim.add_signal("data", 0u32);
    let ack = sim.add_signal("ack", false);
    let received = sim.add_signal("received", 0u32);
    let count = sim.add_signal("count", 0u32);

    sim.add_clocked_process("producer", clk, Edge::Rising, move |ctx| {
        if !ctx.get(valid) {
            let n = ctx.get(count);
            ctx.set(data, 100 + n);
            ctx.set(valid, true);
        } else if ctx.get(ack) {
            ctx.set(valid, false);
            let n = ctx.get(count);
            ctx.set(count, n + 1);
        }
    });
    sim.add_clocked_process("consumer", clk, Edge::Rising, move |ctx| {
        if ctx.get(valid) && !ctx.get(ack) {
            ctx.set(ack, true);
            let d = ctx.get(data);
            ctx.set(received, d);
        } else {
            ctx.set(ack, false);
        }
    });
    sim.add_clock(clk, 5).unwrap();
    sim.run_for(300).unwrap();
    let transferred = sim.value(count);
    assert!(transferred >= 5, "handshake made progress: {transferred}");
    assert!(sim.value(received) >= 100);
}

#[test]
fn oscillator_is_caught_as_delta_overflow() {
    // A zero-delay NOT feeding itself.
    let mut sim = Simulator::new();
    let x = sim.add_signal("x", false);
    sim.add_comb_process("inv", &[x.id()], move |ctx| {
        let v = ctx.get(x);
        ctx.set(x, !v);
    });
    sim.set_delta_limit(32);
    let err = sim.settle().unwrap_err();
    assert!(matches!(err, SimError::DeltaOverflow { limit: 32, .. }));
}

#[test]
fn delayed_writes_model_transport_delay() {
    // A "wire with 7ns transport delay" via set_after.
    let mut sim = Simulator::new();
    let input = sim.add_signal("in", 0u8);
    let output = sim.add_signal("out", 0u8);
    sim.add_comb_process("delay_line", &[input.id()], move |ctx| {
        let v = ctx.get(input);
        ctx.set_after(output, v, 7);
    });
    sim.settle().unwrap();
    sim.drive(input, 42);
    sim.run_for(6).unwrap();
    assert_eq!(sim.value(output), 0, "value still in flight");
    sim.run_for(1).unwrap();
    assert_eq!(sim.value(output), 42, "arrives exactly at 7 ticks");
    assert_eq!(sim.now(), SimTime::from_ticks(7));
}

#[test]
fn trace_captures_counter_waveform() {
    let mut sim = Simulator::new();
    let clk = sim.add_signal("clk", false);
    let q = sim.add_signal("q", 0u8);
    sim.add_clocked_process("cnt", clk, Edge::Rising, move |ctx| {
        let v = ctx.get(q);
        ctx.set(q, v.wrapping_add(1));
    });
    sim.set_trace(VecTrace::default());
    sim.trace_signal(q.id());
    sim.add_clock(clk, 10).unwrap();
    sim.run_for(100).unwrap();
    let trace: &VecTrace = sim.trace().unwrap();
    assert_eq!(trace.records.len(), 5, "five increments traced");
    // Values ascend 1..=5 at times 10, 30, 50, 70, 90.
    for (k, rec) in trace.records.iter().enumerate() {
        assert_eq!(rec.value.low_u64(), k as u64 + 1);
        assert_eq!(rec.time.ticks(), 10 + 20 * k as u64);
    }
}

#[test]
fn activity_coverage_reflects_a_dead_branch() {
    let mut sim = Simulator::new();
    let sel = sim.add_signal("sel", false);
    let live = sim.add_branch("mux/live");
    let dead = sim.add_branch("mux/dead");
    sim.add_comb_process("mux", &[sel.id()], move |ctx| {
        if ctx.get(sel) {
            ctx.cov(dead);
        } else {
            ctx.cov(live);
        }
    });
    sim.settle().unwrap();
    let cov = sim.activity_coverage();
    assert_eq!(cov.branch_coverage(), 0.5);
    let missed: Vec<_> = cov.missed_branches().map(|b| b.name.clone()).collect();
    assert_eq!(missed, ["mux/dead"]);
}
