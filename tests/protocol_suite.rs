//! Integration: the full twelve-test suite across a representative slice
//! of configurations, on both views — the inner loop of the paper's
//! regression campaign, kept small enough to run in CI.

use catg::{tests_lib, Testbench, TestbenchOptions};
use stbus_protocol::{ArbitrationKind, Architecture, NodeConfig, ProtocolType, ViewKind};

fn configs() -> Vec<NodeConfig> {
    vec![
        // Type 1: the simple handshake protocol, one outstanding at a time.
        NodeConfig::builder("it_t1")
            .initiators(2)
            .targets(2)
            .bus_bytes(4)
            .protocol(ProtocolType::Type1)
            .architecture(Architecture::SharedBus)
            .arbitration(ArbitrationKind::RoundRobin)
            .build()
            .expect("valid"),
        // Type 2 with the narrowest legal bus.
        NodeConfig::builder("it_t2_narrow")
            .initiators(2)
            .targets(2)
            .bus_bytes(1)
            .protocol(ProtocolType::Type2)
            .architecture(Architecture::PartialCrossbar { lanes: 1 })
            .arbitration(ArbitrationKind::LatencyBased)
            .build()
            .expect("valid"),
        // Type 3 with the widest bus and a pipeline stage.
        NodeConfig::builder("it_t3_wide_piped")
            .initiators(3)
            .targets(3)
            .bus_bytes(32)
            .protocol(ProtocolType::Type3)
            .architecture(Architecture::FullCrossbar)
            .arbitration(ArbitrationKind::BandwidthLimited)
            .pipe_depth(2)
            .build()
            .expect("valid"),
        // Big-endian lanes.
        NodeConfig::builder("it_big_endian")
            .initiators(2)
            .targets(2)
            .bus_bytes(8)
            .protocol(ProtocolType::Type2)
            .architecture(Architecture::FullCrossbar)
            .arbitration(ArbitrationKind::FixedPriority)
            .endianness(stbus_protocol::Endianness::Big)
            .build()
            .expect("valid"),
    ]
}

#[test]
fn suite_passes_on_every_config_and_view() {
    for config in configs() {
        let bench = Testbench::new(config.clone(), TestbenchOptions::default());
        for kind in [ViewKind::Rtl, ViewKind::Bca] {
            let mut dut = catg::build_view(&config, kind);
            for spec in tests_lib::all(12) {
                let result = bench.run(dut.as_mut(), &spec, 9);
                assert!(
                    result.passed(),
                    "{} / {kind} / {}: {:?} {:?} {:?}",
                    config.name,
                    spec.name,
                    result.checker.violations,
                    result.scoreboard_errors,
                    result.anomalies
                );
                assert!(result.completed, "{} {} drained", config.name, spec.name);
            }
        }
    }
}

#[test]
fn transaction_counts_match_across_views_everywhere() {
    for config in configs() {
        let bench = Testbench::new(config.clone(), TestbenchOptions::default());
        let mut rtl = catg::build_view(&config, ViewKind::Rtl);
        let mut bca = catg::build_view(&config, ViewKind::Bca);
        for spec in tests_lib::all(8) {
            let a = bench.run(rtl.as_mut(), &spec, 4);
            let b = bench.run(bca.as_mut(), &spec, 4);
            assert_eq!(
                a.transactions, b.transactions,
                "{} / {}",
                config.name, spec.name
            );
            assert_eq!(
                a.stats, b.stats,
                "per-initiator statistics differ on {} / {}",
                config.name, spec.name
            );
        }
    }
}

#[test]
fn coverage_bins_identical_across_views() {
    // "of course they must be equal running the same tests".
    let config = NodeConfig::reference();
    let bench = Testbench::new(config.clone(), TestbenchOptions::default());
    let mut rtl = catg::build_view(&config, ViewKind::Rtl);
    let mut bca = catg::build_view(&config, ViewKind::Bca);
    for spec in tests_lib::all(10) {
        let a = bench.run(rtl.as_mut(), &spec, 2);
        let b = bench.run(bca.as_mut(), &spec, 2);
        assert!(
            a.coverage.same_hits(&b.coverage),
            "coverage hit patterns differ on {}",
            spec.name
        );
    }
}

#[test]
fn checker_exercises_every_applicable_rule() {
    // Across the suite, every rule of the catalogue that applies to the
    // protocol type must actually have been evaluated (a checker that
    // never runs is worse than no checker).
    use stbus_protocol::rules::RuleId;
    for config in [configs().remove(0), NodeConfig::reference()] {
        let bench = Testbench::new(config.clone(), TestbenchOptions::default());
        let mut dut = catg::build_view(&config, ViewKind::Bca);
        let mut seen: std::collections::BTreeMap<RuleId, u64> = Default::default();
        for spec in tests_lib::all(15) {
            let result = bench.run(dut.as_mut(), &spec, 1);
            for (rule, n) in result.checker.checks_passed {
                *seen.entry(rule).or_insert(0) += n;
            }
        }
        for rule in RuleId::active_for(config.protocol) {
            // Stability rules only tally when a stall actually happened;
            // everything else must have fired.
            if matches!(rule, RuleId::ReqStable | RuleId::RspStable) {
                continue;
            }
            assert!(
                seen.get(&rule).copied().unwrap_or(0) > 0,
                "{}: rule {rule} was never evaluated",
                config.name
            );
        }
    }
}
