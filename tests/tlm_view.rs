//! The TLM functional view (the paper's future-work extension) through
//! the same common environment: functionally clean, bus-inaccurate —
//! demonstrating why the flow has separate functional and bus-accurate
//! phases.

use catg::{tests_lib, Testbench, TestbenchOptions};
use stbus_protocol::NodeConfig;
use stbus_rtl::RtlNode;
use stbus_tlm::TlmNode;

#[test]
fn tlm_view_passes_the_functional_suite() {
    let cfg = NodeConfig::reference();
    let bench = Testbench::new(cfg.clone(), TestbenchOptions::default());
    let mut tlm = TlmNode::new(cfg.clone());
    for spec in tests_lib::all(15) {
        let result = bench.run(&mut tlm, &spec, 6);
        assert!(
            result.passed(),
            "TLM failed {}: {:?} {:?} {:?}",
            spec.name,
            result.checker.violations,
            result.scoreboard_errors,
            result.anomalies
        );
    }
}

#[test]
fn tlm_view_reaches_the_same_functional_coverage() {
    let cfg = NodeConfig::reference();
    let bench = Testbench::new(cfg.clone(), TestbenchOptions::default());
    let mut tlm = TlmNode::new(cfg.clone());
    let mut coverage: Option<catg::CoverageReport> = None;
    for spec in tests_lib::all(30) {
        for seed in [1u64, 2, 3] {
            let result = bench.run(&mut tlm, &spec, seed);
            assert!(result.passed(), "{}", spec.name);
            match &mut coverage {
                Some(c) => c.merge(&result.coverage),
                None => coverage = Some(result.coverage.clone()),
            }
        }
    }
    let coverage = coverage.expect("ran");
    // The untimed view can never stall a request, so the wait-time bins
    // are unreachable by construction; every *behavioral* group must be
    // full.
    for group in &coverage.groups {
        if group.name == "stall" {
            assert!(group.bins["zero"] > 0, "zero-wait grants observed");
            continue;
        }
        assert_eq!(
            group.coverage(),
            1.0,
            "group {} has holes on the TLM view: {:?}",
            group.name,
            group.holes().collect::<Vec<_>>()
        );
    }
}

#[test]
fn tlm_view_is_not_bus_accurate() {
    // The same run that aligns ≥99% for the BCA view stays far below the
    // sign-off threshold for the untimed TLM view — TLM belongs in the
    // functional phase, not the bus-accurate one.
    let cfg = NodeConfig::reference();
    let bench = Testbench::new(
        cfg.clone(),
        TestbenchOptions {
            capture_vcd: true,
            ..TestbenchOptions::default()
        },
    );
    let mut rtl = RtlNode::new(cfg.clone());
    let mut tlm = TlmNode::new(cfg.clone());
    let spec = tests_lib::lru_fairness(25);
    let a = bench.run(&mut rtl, &spec, 1);
    let b = bench.run(&mut tlm, &spec, 1);
    assert!(a.passed() && b.passed());
    let report = stba::compare_vcd(
        a.vcd.as_ref().expect("captured"),
        b.vcd.as_ref().expect("captured"),
        catg::vcd_cycle_time(),
    )
    .expect("same tree");
    assert!(
        !report.signed_off(0.99),
        "an untimed model must not pass bus-accurate sign-off: {report}"
    );
}

#[test]
fn tlm_completes_faster_than_cycle_accurate_views() {
    // No arbitration stalls: the TLM run drains in fewer cycles under
    // contention.
    let cfg = NodeConfig::reference();
    let bench = Testbench::new(cfg.clone(), TestbenchOptions::default());
    let spec = tests_lib::latency_stress(30);
    let mut rtl = RtlNode::new(cfg.clone());
    let mut tlm = TlmNode::new(cfg.clone());
    let a = bench.run(&mut rtl, &spec, 2);
    let b = bench.run(&mut tlm, &spec, 2);
    assert!(a.passed() && b.passed());
    assert!(
        b.cycles <= a.cycles,
        "TLM ({}) should not be slower than RTL ({}) in simulated cycles",
        b.cycles,
        a.cycles
    );
}
