//! Umbrella crate re-exporting the whole STBus verification workspace.
//!
//! See the individual crates for details:
//! [`catg`] (the common environment), [`stbus_rtl`] / [`stbus_bca`] (the
//! two design views), [`stbus_protocol`], [`sim_kernel`], [`vcd`],
//! [`stba`] and [`regression`].

pub use catg;
pub use regression;
pub use sim_kernel;
pub use stba;
pub use stbus_bca;
pub use stbus_protocol;
pub use stbus_rtl;
pub use vcd;
